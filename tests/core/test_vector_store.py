"""Tests for the semantic-vector maintenance policies."""

import pytest

from repro.core.config import FarmerConfig
from repro.core.extractor import Extractor
from repro.core.vector_store import VectorStore
from repro.vsm.similarity import ipa_similarity
from tests.conftest import make_record


def store_for(policy: str, merge_cap: int = 4, attrs=("user", "process", "host", "path")):
    cfg = FarmerConfig(sv_policy=policy, merge_cap=merge_cap, attributes=attrs)
    return VectorStore(cfg, Extractor(cfg.attributes))


class TestLatestPolicy:
    def test_tracks_last_request(self):
        store = store_for("latest")
        store.update(make_record(1, uid=1))
        store.update(make_record(1, uid=2))
        other = store_for("latest")
        other.update(make_record(2, uid=2))
        # latest SV of fid 1 has uid 2 only
        v1 = store.get(1)
        assert v1 is not None
        assert len(v1.scalar_ids) == 3  # user, process, host

    def test_get_unknown(self):
        assert store_for("latest").get(99) is None


class TestFirstPolicy:
    def test_frozen_at_first(self):
        store = store_for("first")
        store.update(make_record(1, uid=1, pid=10))
        first = store.get(1)
        store.update(make_record(1, uid=2, pid=20))
        assert store.get(1) == first


class TestMergePolicy:
    def test_accumulates_contexts(self):
        store = store_for("merge")
        store.update(make_record(1, uid=1, pid=10))
        store.update(make_record(1, uid=2, pid=20))
        v = store.get(1)
        # two users, two pids, one host
        assert len(v.scalar_ids) == 5

    def test_cap_evicts_lru_value(self):
        store = store_for("merge", merge_cap=2)
        for uid in (1, 2, 3):
            store.update(make_record(1, uid=uid))
        store_fresh = store_for("merge", merge_cap=2)
        store_fresh.update(make_record(2, uid=1))
        v = store.get(1)
        # uid bucket capped at 2: uids {2, 3} kept, 1 evicted
        uid1_token = store_fresh.get(2)  # not comparable across vocabs
        assert sum(1 for _ in v.scalar_ids) == 2 + 1 + 1  # 2 users + pid? no:
        # actually: users capped at 2, pids capped at 2 (only 1 distinct), host 1
        # total = 2 + 1 + 1 = 4
        assert len(v.scalar_ids) == 4

    def test_duplicate_value_refreshes_recency(self):
        store = store_for("merge", merge_cap=2)
        store.update(make_record(1, uid=1))
        store.update(make_record(1, uid=2))
        store.update(make_record(1, uid=1))  # refresh 1
        store.update(make_record(1, uid=3))  # evicts 2, not 1
        v = store.get(1)
        # check via similarity against a probe file touched by uid=1
        store.update(make_record(2, uid=1))
        sim = ipa_similarity(store.get(1), store.get(2))
        assert sim > 0.0

    def test_shared_library_effect(self):
        """A shared file's merged vector overlaps both requesters."""
        store = store_for("merge")
        store.update(make_record(100, uid=1, pid=10, path="/usr/lib/libc.so"))
        store.update(make_record(100, uid=2, pid=20, path="/usr/lib/libc.so"))
        store.update(make_record(1, uid=1, pid=10, path="/home/u1/a"))
        store.update(make_record(2, uid=2, pid=20, path="/home/u2/b"))
        lib = store.get(100)
        sim_to_1 = ipa_similarity(lib, store.get(1))
        sim_to_2 = ipa_similarity(lib, store.get(2))
        assert sim_to_1 > 0.0 and sim_to_2 > 0.0

    def test_path_kept_latest(self):
        store = store_for("merge")
        store.update(make_record(1, path="/a/b"))
        store.update(make_record(1, path="/a/c"))
        v = store.get(1)
        assert v.path_ids is not None and len(v.path_ids) == 2

    def test_len(self):
        store = store_for("merge")
        store.update(make_record(1))
        store.update(make_record(2))
        store.update(make_record(1))
        assert len(store) == 2

    def test_approx_bytes_grows(self):
        store = store_for("merge")
        before = store.approx_bytes()
        for i in range(30):
            store.update(make_record(i, uid=i, path=f"/d/{i}"))
        assert store.approx_bytes() > before


class TestVectorVersions:
    def test_unseen_is_zero(self):
        assert store_for("merge").version_of(42) == 0

    def test_first_update_bumps(self):
        store = store_for("merge")
        store.update(make_record(1))
        assert store.version_of(1) == 1

    def test_identical_update_does_not_bump(self):
        """The version moves only when the vector actually changes."""
        for policy in ("merge", "latest"):
            store = store_for(policy)
            store.update(make_record(1, uid=1, path="/a/b"))
            v1 = store.version_of(1)
            store.update(make_record(1, uid=1, path="/a/b"))
            assert store.version_of(1) == v1

    def test_changed_attributes_bump(self):
        for policy in ("merge", "latest"):
            store = store_for(policy)
            store.update(make_record(1, uid=1))
            store.update(make_record(1, uid=2))
            assert store.version_of(1) == 2

    def test_first_policy_freezes_version(self):
        store = store_for("first")
        store.update(make_record(1, uid=1))
        store.update(make_record(1, uid=2))
        assert store.version_of(1) == 1

    def test_versions_monotonic(self):
        store = store_for("latest")
        versions = []
        for uid in (1, 2, 2, 3, 1):
            store.update(make_record(1, uid=uid))
            versions.append(store.version_of(1))
        assert versions == sorted(versions)
        assert versions[-1] == 4  # uid 2->2 did not bump
