"""The docs suite stays real: files exist, are linked, and their code
runs; the public service/storage surface stays documented.

This mirrors the CI docs job locally so a PR cannot silently rot the
documentation (ISSUE 4 satellites).
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[2]
sys.path.insert(0, str(REPO / "tools"))

from check_docs import check_markdown, extract_blocks  # noqa: E402
from check_docstrings import check_file  # noqa: E402

DOCS = (
    "architecture.md",
    "equivalence.md",
    "benchmarks.md",
    "workloads.md",
    "tiering.md",
)


class TestDocsExist:
    @pytest.mark.parametrize("name", DOCS)
    def test_doc_exists_and_nontrivial(self, name):
        path = REPO / "docs" / name
        assert path.is_file()
        assert len(path.read_text()) > 1_000

    @pytest.mark.parametrize("name", DOCS)
    def test_readme_links_doc(self, name):
        readme = (REPO / "README.md").read_text()
        assert f"docs/{name}" in readme

    def test_caveat_lives_in_benchmarks_doc(self):
        """The 1-core executor-overhead caveat's single home."""
        text = (REPO / "docs" / "benchmarks.md").read_text()
        assert "executor overhead, not" in text
        # and the CLI service --parallel help states it and points here
        from repro.cli import build_parser

        parser = build_parser()
        service_parser = parser._subparsers._group_actions[0].choices["service"]
        help_text = service_parser.format_help()
        assert "executor overhead" in help_text
        assert "docs/benchmarks.md" in help_text


class TestDocBlocksCompile:
    """Compile always; execution is exercised by the CI docs job (and
    by TestDocBlocksRun below on one cheap file)."""

    @pytest.mark.parametrize("name", DOCS)
    def test_blocks_compile(self, name):
        assert check_markdown(REPO / "docs" / name, run=False) == []

    def test_readme_blocks_compile(self):
        assert check_markdown(REPO / "README.md", run=False) == []

    def test_blocks_exist(self):
        """The architecture and equivalence docs each carry at least
        one runnable example."""
        for name in ("architecture.md", "equivalence.md"):
            blocks = extract_blocks((REPO / "docs" / name).read_text())
            assert any(runnable for _, runnable in blocks)


class TestDocBlocksRun:
    def test_architecture_example_runs(self):
        """Execute the cheapest doc's blocks end-to-end (the full sweep
        is the CI docs job)."""
        env = os.environ.copy()
        env["PYTHONPATH"] = str(REPO / "src")
        for index, (code, runnable) in enumerate(
            extract_blocks((REPO / "docs" / "architecture.md").read_text())
        ):
            if not runnable:
                continue
            proc = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                timeout=300,
            )
            assert proc.returncode == 0, (
                f"architecture.md block {index + 1} failed:\n{proc.stderr}"
            )


class TestDocstringSurface:
    @pytest.mark.parametrize("package", ["service", "storage", "workloads"])
    def test_public_surface_documented(self, package):
        """Satellite: every public module/class/function/method in the
        service, storage and workloads packages carries a docstring."""
        problems = []
        for file in sorted((REPO / "src" / "repro" / package).rglob("*.py")):
            problems.extend(check_file(file))
        assert problems == []
