"""The ISSUE 8 acceptance property: a recovered service answers queries
bit-identically to a never-crashed same-config service at the last
durable barrier.

The harness simulates a SIGKILL by *abandoning* a durable
:class:`OnlineService` mid-flight — no drain, no final snapshot, records
still sitting in the ingest queue (the mid-``mine()`` crash: accepted
and journaled, never consumed) — then recovers from the data directory
alone. Crash points, checkpoint barriers and partial drains are
randomized per (router, replication) cell; torn WAL tails get their own
case. The reference is a fresh ``ShardedFarmer`` fed the durable prefix
through the ordinary ingest seam, flushing echoes at the same barriers
the durable run checkpointed at (bit-neutral at the just-in-time echo
interval 0; load-bearing under a batched interval, which has its own
case below).
"""

import random

import pytest

from repro.core.config import FarmerConfig
from repro.durability import DurabilityManager
from repro.online import Admission, AdmissionPolicy, OnlineService
from repro.service.sharded import ShardedFarmer
from tests.conftest import cached_trace
from tests.online.test_drain_equivalence import assert_bit_identical

WIDE_OPEN = AdmissionPolicy(
    capacity=100_000, echo_watermark=1.0, defer_watermark=1.0
)


def run_and_crash(data_dir, cfg, records, crash_at, checkpoints, drains=()):
    """Feed ``records[:crash_at]`` into a durable service, checkpointing
    at the given accepted counts, then abandon it without any barrier —
    the SIGKILL equivalent. Returns nothing; only the disk survives."""
    manager = DurabilityManager(data_dir)
    online = OnlineService(
        cfg, policy=WIDE_OPEN, durability=manager, batch_size=128
    )
    pending_cp = sorted(checkpoints)
    pending_drain = sorted(drains)
    for count, record in enumerate(records[:crash_at], start=1):
        assert online.offer(record) is Admission.ACCEPTED
        if pending_cp and count == pending_cp[0]:
            report = online.checkpoint()
            assert report.seq == count
            pending_cp.pop(0)
        if pending_drain and count == pending_drain[0]:
            online.drain()
            pending_drain.pop(0)
    manager.wal.close()  # release the file handle; state is abandoned


def recover(data_dir, cfg):
    manager = DurabilityManager(data_dir)
    service, report = manager.recover(cfg)
    online = OnlineService(
        service=service, policy=WIDE_OPEN, durability=manager
    )
    return online, report


def reference_at(cfg, records, durable_seq, barriers=()):
    """A never-crashed service at the durable barrier: the accepted
    prefix through the same ingest seam, echoes flushed at the same
    checkpoint barriers the durable run hit."""
    ref = ShardedFarmer(cfg)
    prev = 0
    for barrier in sorted(barriers):
        ref.ingest_stream((r, True) for r in records[prev:barrier])
        ref.flush_echoes()
        prev = barrier
    ref.ingest_stream((r, True) for r in records[prev:durable_seq])
    return ref


@pytest.mark.parametrize("router", ["hash", "consistent_hash"])
@pytest.mark.parametrize("replication", [False, True])
def test_recovered_equals_never_crashed(tmp_path, router, replication):
    """Randomized crash points per cell, queued-but-unmined tails
    included; every recovery must land bit-identical on the full
    accepted (= journaled) stream."""
    records = cached_trace("hp", 6_000, 13)
    cfg = FarmerConfig(
        n_shards=4,
        shard_policy=router,
        max_strength=0.3,
        replication=replication,
        standby_sync_interval=512,
    )
    rng = random.Random(f"{router}-{replication}")
    for trial in range(2):
        crash_at = rng.randrange(1_500, len(records))
        barriers = sorted(
            rng.sample(range(300, crash_at), rng.randrange(0, 3))
        )
        drains = sorted(
            rng.sample(range(300, crash_at), rng.randrange(0, 2))
        )
        data_dir = tmp_path / f"trial-{trial}"
        run_and_crash(data_dir, cfg, records, crash_at, barriers, drains)
        online, report = recover(data_dir, cfg)
        assert report.durable_seq == crash_at
        assert online.consumed_seq == crash_at
        reference = reference_at(cfg, records, crash_at, barriers)
        assert_bit_identical(online, reference, records[:crash_at])


def test_post_restore_failover_still_works(tmp_path):
    """Recovery re-arms the standbys: a post-restore fail/promote cycle
    serves exactly what a never-crashed service at the same barrier
    would."""
    records = cached_trace("hp", 5_000, 13)
    cfg = FarmerConfig(
        n_shards=4,
        shard_policy="consistent_hash",
        max_strength=0.3,
        replication=True,
        standby_sync_interval=512,
    )
    run_and_crash(tmp_path, cfg, records, 4_200, [1_800])
    online, _ = recover(tmp_path, cfg)
    reference = reference_at(cfg, records, 4_200, [1_800])
    online.service.sync_standbys()
    reference.sync_standbys()
    online.fail_shard(2)
    online.promote_standby(2)
    assert_bit_identical(online, reference, records[:4_200])


def test_torn_wal_tail_recovers_to_last_complete_record(tmp_path):
    """Cutting bytes off the journaled tail loses exactly the torn
    record: recovery lands on the last complete one, stays bit-identical
    there, and surfaces the discarded byte count through ``/stats``."""
    records = cached_trace("hp", 4_000, 13)
    cfg = FarmerConfig(n_shards=4, max_strength=0.3)
    run_and_crash(tmp_path, cfg, records, 3_000, [1_200])
    newest = max((tmp_path / "wal").glob("wal-*.log"))
    data = newest.read_bytes()
    with open(newest, "ab") as fh:
        fh.truncate(len(data) - 5)
    online, report = recover(tmp_path, cfg)
    assert report.durable_seq == 2_999
    assert report.wal_discarded_bytes > 0
    stats = online.stats()
    assert (
        stats.durability.recovery.wal_discarded_bytes
        == report.wal_discarded_bytes
    )
    reference = reference_at(cfg, records, 2_999, [1_200])
    assert_bit_identical(online, reference, records[:2_999])


def test_crash_mid_snapshot_falls_back_to_sealed_barrier(tmp_path):
    """A .tmp directory left by a crash inside the snapshot writer is
    ignored; recovery restores the last sealed barrier and replays the
    full WAL tail over it."""
    records = cached_trace("hp", 4_000, 13)
    cfg = FarmerConfig(n_shards=4, max_strength=0.3)
    run_and_crash(tmp_path, cfg, records, 3_400, [1_000])
    partial = tmp_path / "snapshots" / "snap-000000003000.tmp"
    partial.mkdir()
    (partial / "shared.pkl").write_bytes(b"torn mid-write")
    online, report = recover(tmp_path, cfg)
    assert report.snapshot_seq == 1_000
    assert report.durable_seq == 3_400
    reference = reference_at(cfg, records, 3_400, [1_000])
    assert_bit_identical(online, reference, records[:3_400])


def test_corrupt_newest_snapshot_falls_back_and_replays_more(tmp_path):
    """Damage to the newest snapshot falls back to the previous barrier
    — whose WAL segments are retained exactly for this — at the cost of
    a longer replay, not of correctness."""
    records = cached_trace("hp", 4_000, 13)
    cfg = FarmerConfig(n_shards=4, max_strength=0.3)
    run_and_crash(tmp_path, cfg, records, 3_600, [1_000, 2_500])
    bad = tmp_path / "snapshots" / "snap-000000002500" / "shard-1.pkl"
    data = bytearray(bad.read_bytes())
    data[100] ^= 0xFF
    bad.write_bytes(data)
    online, report = recover(tmp_path, cfg)
    assert report.snapshot_seq == 1_000
    assert report.wal_replayed == 2_600
    reference = reference_at(cfg, records, 3_600, [1_000, 2_500])
    assert_bit_identical(online, reference, records[:3_600])


def test_recovery_with_batched_echo_interval(tmp_path):
    """Under echo_flush_interval K>0 checkpoint barriers are schedule
    events (each flushes the pending echo queues); the reference must
    flush at the same accepted counts, and then recovery reproduces the
    batched schedule exactly — cadence counters travel in the
    snapshot."""
    records = cached_trace("hp", 4_000, 13)
    cfg = FarmerConfig(
        n_shards=4, max_strength=0.3, echo_flush_interval=64
    )
    run_and_crash(tmp_path, cfg, records, 3_500, [1_200, 2_400])
    online, report = recover(tmp_path, cfg)
    assert report.durable_seq == 3_500
    reference = reference_at(cfg, records, 3_500, [1_200, 2_400])
    assert_bit_identical(online, reference, records[:3_500])


def test_fresh_data_dir_recovers_to_empty(tmp_path):
    cfg = FarmerConfig(n_shards=2)
    manager = DurabilityManager(tmp_path)
    assert not manager.has_state()
    service, report = manager.recover(cfg)
    assert report.durable_seq == 0 and report.snapshot_path is None
    assert service.n_observed == 0
