"""``repro serve`` signal handling: SIGINT/SIGTERM stop agents, drain,
take a final snapshot and exit 0 (ISSUE 8 satellite) — an operator
Ctrl-C on a durable service must never discard the accepted tail."""

import os
import signal
import subprocess
import sys
import time

import pytest

REPO_SRC = os.path.join(os.path.dirname(__file__), "..", "..", "src")


def start_serve(tmp_path, *extra):
    env = dict(os.environ, PYTHONPATH=os.path.abspath(REPO_SRC))
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--shards",
            "2",
            "--data-dir",
            str(tmp_path / "data"),
            "--replay-events",
            "800",
            "--rate",
            "1e9",
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    # wait for the readiness line so the signal lands on a live service
    deadline = time.monotonic() + 60.0
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        if line.startswith("serving on "):
            return proc, lines
    proc.kill()
    pytest.fail(f"serve never became ready: {''.join(lines)}")


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_signal_drains_snapshots_and_exits_zero(tmp_path, signum):
    proc, lines = start_serve(tmp_path)
    time.sleep(1.0)  # let the replay agent offer its records
    proc.send_signal(signum)
    out, _ = proc.communicate(timeout=60.0)
    output = "".join(lines) + out
    assert proc.returncode == 0, output
    assert "final snapshot at seq" in output, output
    assert "drained" in output, output
    snapshots = list((tmp_path / "data" / "snapshots").glob("snap-*"))
    assert snapshots, output


def test_boot_over_existing_state_requires_recover(tmp_path):
    proc, _ = start_serve(tmp_path)
    time.sleep(0.5)
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=60.0)
    assert proc.returncode == 0, out
    # a second boot over the same data dir without --recover must refuse
    env = dict(os.environ, PYTHONPATH=os.path.abspath(REPO_SRC))
    refused = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--data-dir",
            str(tmp_path / "data"),
        ],
        capture_output=True,
        text=True,
        timeout=60.0,
        env=env,
    )
    assert refused.returncode == 2
    assert "--recover" in refused.stderr
