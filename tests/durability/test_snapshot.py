"""Snapshot faithfulness: a restore is the captured service, bit for
bit — shared-store identity, lazy-rank schedule, standbys and all."""

import pytest

from repro.core.config import FarmerConfig
from repro.durability.manager import DurabilityManager
from repro.durability.snapshot import (
    latest_snapshot,
    load_snapshot,
    write_snapshot,
)
from repro.errors import PersistenceError, SnapshotMismatchError
from repro.service.sharded import ShardedFarmer
from tests.conftest import cached_trace


def build_service(cfg, records):
    service = ShardedFarmer(cfg)
    service.ingest_stream((r, True) for r in records)
    return service


def assert_same_answers(left, right, records):
    for fid in sorted({r.fid for r in records}):
        assert left.predict(fid) == right.predict(fid)
        assert left.correlators(fid) == right.correlators(fid)
    assert left.snapshot() == right.snapshot()


@pytest.fixture(scope="module")
def records():
    return cached_trace("hp", 5_000, 13)


CFG = FarmerConfig(
    n_shards=4,
    shard_policy="consistent_hash",
    max_strength=0.3,
    replication=True,
    standby_sync_interval=512,
)


class TestRoundTrip:
    def test_restore_is_bit_identical_and_stays_identical(self, tmp_path, records):
        """The restored service matches the captured one not only on
        every query *now*, but after both keep mining — the capture is
        the full state (dirty marks, windows, cadence counters), not a
        frozen rank."""
        service = build_service(CFG, records[:3_500])
        write_snapshot(tmp_path, service, 3_500)
        restored = load_snapshot(latest_snapshot(tmp_path))
        assert_same_answers(service, restored, records[:3_500])
        service.ingest_stream((r, True) for r in records[3_500:])
        restored.ingest_stream((r, True) for r in records[3_500:])
        assert_same_answers(service, restored, records)

    def test_shared_stores_restore_by_identity(self, tmp_path, records):
        service = build_service(CFG, records[:2_000])
        write_snapshot(tmp_path, service, 2_000)
        restored = load_snapshot(latest_snapshot(tmp_path))
        for shard in restored.shards:
            assert shard.vocabulary is restored.vocabulary
            assert shard.miner.sim_cache is restored.sim_cache
            assert shard.constructor.vectors is restored.vector_store
        assert restored._replicator._service is restored
        for replica in restored._replicator.replicas:
            assert replica.farmer.vocabulary is restored.vocabulary

    def test_standbys_restore_armed(self, tmp_path, records):
        """Failover still works after a restore: the pickled standbys
        come back at their barrier and a post-restore promotion serves
        exactly what the captured service would."""
        service = build_service(CFG, records[:3_000])
        write_snapshot(tmp_path, service, 3_000)
        restored = load_snapshot(latest_snapshot(tmp_path))
        restored.sync_standbys()
        service.sync_standbys()
        restored.fail_shard(1)
        restored.promote_standby(1)
        assert_same_answers(service, restored, records[:3_000])

    def test_snapshot_at_existing_seq_is_unchanged(self, tmp_path, records):
        service = build_service(CFG, records[:1_000])
        first = write_snapshot(tmp_path, service, 1_000)
        again = write_snapshot(tmp_path, service, 1_000)
        assert not first.unchanged
        assert again.unchanged and again.bytes_total == 0


class TestDamage:
    def test_tmp_dir_from_mid_snapshot_crash_is_ignored(self, tmp_path, records):
        service = build_service(CFG, records[:1_500])
        write_snapshot(tmp_path, service, 1_500)
        partial = tmp_path / "snap-000000009999.tmp"
        partial.mkdir()
        (partial / "shard-0.pkl").write_bytes(b"half a pickle")
        chosen = latest_snapshot(tmp_path)
        assert chosen is not None and chosen.name == "snap-000000001500"

    def test_corrupt_newest_falls_back_to_previous(self, tmp_path, records):
        service = build_service(CFG, records[:1_000])
        write_snapshot(tmp_path, service, 1_000)
        service.ingest_stream((r, True) for r in records[1_000:2_000])
        write_snapshot(tmp_path, service, 2_000)
        bad = tmp_path / "snap-000000002000" / "shard-2.pkl"
        data = bytearray(bad.read_bytes())
        data[50] ^= 0xFF
        bad.write_bytes(data)
        chosen = latest_snapshot(tmp_path)
        assert chosen is not None and chosen.name == "snap-000000001000"

    def test_load_of_damaged_snapshot_refuses(self, tmp_path, records):
        service = build_service(CFG, records[:800])
        report = write_snapshot(tmp_path, service, 800)
        (tmp_path / "snap-000000000800" / "service.pkl").unlink()
        with pytest.raises(PersistenceError, match="missing or corrupt"):
            load_snapshot(report.path)


class TestConfigMismatch:
    @pytest.mark.parametrize(
        "override, field",
        [
            (dict(n_shards=8), "n_shards"),
            (dict(shard_policy="hash"), "shard_policy"),
            (dict(replication=False), "replication"),
        ],
    )
    def test_recovery_refuses_and_names_the_field(
        self, tmp_path, records, override, field
    ):
        manager = DurabilityManager(tmp_path)
        service = build_service(CFG, records[:1_000])
        manager.checkpoint(service, 1_000)
        booting = DurabilityManager(tmp_path)
        with pytest.raises(SnapshotMismatchError, match=field):
            booting.recover(CFG.with_(**override))
