"""WAL unit coverage: CRC framing, rotation, pruning, torn-tail
recovery at every byte boundary of the last record (ISSUE 8 satellite).

Numpy-free by design (hand-built records only) so the no-numpy CI leg
covers the journal format too.
"""

import shutil

import pytest

from repro.durability.wal import WriteAheadLog
from repro.errors import ConfigError, WalCorruptError
from tests.conftest import make_record


def fill(log, n, start=0):
    for i in range(n):
        log.append(make_record(100 + start + i, ts=(start + i) * 1000), True)


def replayed(directory, from_seq=0):
    log = WriteAheadLog(directory)
    try:
        return list(log.replay(from_seq))
    finally:
        log.close()


class TestFraming:
    def test_round_trip_preserves_records_and_flags(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        records = [make_record(fid, ts=i * 1000) for i, fid in enumerate([7, 3, 7, 9])]
        flags = [True, False, True, False]
        for record, flag in zip(records, flags):
            log.append(record, flag)
        log.close()
        entries = replayed(tmp_path)
        assert [seq for seq, _, _ in entries] == [0, 1, 2, 3]
        assert [record for _, record, _ in entries] == records
        assert [flag for _, _, flag in entries] == flags

    def test_sequence_numbers_survive_reopen(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        fill(log, 5)
        log.close()
        log = WriteAheadLog(tmp_path)
        assert log.next_seq == 5
        assert log.append(make_record(1), True) == 5
        log.close()

    def test_replay_from_seq_skips_prefix(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        fill(log, 10)
        log.close()
        assert [seq for seq, _, _ in replayed(tmp_path, from_seq=7)] == [7, 8, 9]

    def test_invalid_fsync_policy_refused(self, tmp_path):
        with pytest.raises(ConfigError):
            WriteAheadLog(tmp_path, fsync="sometimes")
        with pytest.raises(ConfigError):
            WriteAheadLog(tmp_path, fsync_every=0)

    def test_fsync_policy_cadence(self, tmp_path):
        always = WriteAheadLog(tmp_path / "a", fsync="always")
        fill(always, 5)
        assert always.stats().n_fsyncs == 5
        always.close()
        never = WriteAheadLog(tmp_path / "n", fsync="never")
        fill(never, 5)
        assert never.stats().n_fsyncs == 0
        never.close()
        interval = WriteAheadLog(tmp_path / "i", fsync="interval", fsync_every=2)
        fill(interval, 5)
        assert interval.stats().n_fsyncs == 2
        interval.close()


class TestRotationAndPrune:
    def test_rotate_seals_segments_and_replay_spans_them(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        fill(log, 4)
        assert log.rotate() == 4
        fill(log, 3, start=4)
        assert log.stats().n_segments == 2
        log.close()
        assert [seq for seq, _, _ in replayed(tmp_path)] == list(range(7))

    def test_rotate_on_empty_segment_is_idempotent(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        fill(log, 2)
        assert log.rotate() == 2
        assert log.rotate() == 2  # nothing appended in between
        assert log.stats().n_segments == 2
        log.close()

    def test_prune_deletes_only_covered_segments(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        fill(log, 4)
        log.rotate()
        fill(log, 4, start=4)
        log.rotate()
        fill(log, 2, start=8)
        assert log.stats().n_segments == 3
        assert log.prune(4) == 1  # only [0, 4) is covered
        assert log.prune(8) == 1
        assert log.prune(10**9) == 0  # the active segment is never pruned
        assert [seq for seq, _, _ in log.replay(0)] == list(range(8, 10))
        log.close()


class TestTornTail:
    def test_truncation_at_every_byte_of_the_last_record(self, tmp_path):
        """The satellite property: cut the log anywhere inside the last
        record — header bytes included — and recovery lands on the last
        complete record, reporting exactly the discarded byte count."""
        source = tmp_path / "source"
        log = WriteAheadLog(source)
        fill(log, 7)
        last_start = next(source.glob("wal-*.log")).stat().st_size
        fill(log, 1, start=7)  # the record every cut below tears
        log.close()
        segment = next(source.glob("wal-*.log"))
        data = segment.read_bytes()
        assert 0 < last_start < len(data)
        for cut in range(last_start, len(data)):
            torn = tmp_path / f"torn-{cut}"
            torn.mkdir()
            shutil.copy(segment, torn / segment.name)
            with open(torn / segment.name, "ab") as fh:
                fh.truncate(cut)
            recovered = WriteAheadLog(torn)
            assert recovered.next_seq == 7
            assert recovered.discarded_bytes == cut - last_start
            assert len(list(recovered.replay(0))) == 7
            # the log is usable again: the next append takes seq 7
            assert recovered.append(make_record(1), True) == 7
            recovered.close()

    def test_corrupt_tail_byte_truncates_like_a_torn_write(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        fill(log, 6)
        log.close()
        segment = next(tmp_path.glob("wal-*.log"))
        data = bytearray(segment.read_bytes())
        data[-3] ^= 0xFF  # flip a payload byte of the last record
        segment.write_bytes(data)
        recovered = WriteAheadLog(tmp_path)
        assert recovered.next_seq == 5
        assert recovered.discarded_bytes > 0
        recovered.close()

    def test_mid_log_corruption_refuses_to_open(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        fill(log, 4)
        log.rotate()
        fill(log, 4, start=4)
        log.close()
        first = min(tmp_path.glob("wal-*.log"))
        data = bytearray(first.read_bytes())
        data[10] ^= 0xFF  # corrupt a non-final segment
        first.write_bytes(data)
        with pytest.raises(WalCorruptError, match="later segments exist"):
            WriteAheadLog(tmp_path)

    def test_missing_middle_segment_refuses_to_open(self, tmp_path):
        log = WriteAheadLog(tmp_path)
        fill(log, 3)
        log.rotate()
        fill(log, 3, start=3)
        log.rotate()
        fill(log, 3, start=6)
        log.close()
        segments = sorted(tmp_path.glob("wal-*.log"))
        segments[1].unlink()
        with pytest.raises(WalCorruptError, match="missing or truncated"):
            WriteAheadLog(tmp_path)
