"""Tests for the analysis extensions (regression, predictor evaluation)."""

import math

import pytest

from repro.analysis.predictor_eval import evaluate_predictor, evaluate_predictors
from repro.analysis.regression import fit_attribute_regression
from repro.baselines import LastSuccessor, NoopPredictor
from repro.core.farmer import Farmer
from repro.experiments.extensions import run_predictors, run_regression
from tests.conftest import sequence_records


class TestEvaluatePredictor:
    def test_perfect_on_deterministic_stream(self):
        records = sequence_records([1, 2, 3] * 30)
        score = evaluate_predictor(records, LastSuccessor(), k=1, warmup=5)
        assert score.accuracy > 0.9
        assert score.coverage > 0.9

    def test_noop_has_no_predictions(self):
        records = sequence_records([1, 2, 3] * 5)
        score = evaluate_predictor(records, NoopPredictor(), k=1)
        assert score.predictions == 0
        assert math.isnan(score.accuracy)
        assert score.coverage == 0.0

    def test_k_validation(self):
        with pytest.raises(ValueError):
            evaluate_predictor([], NoopPredictor(), k=0)

    def test_farmer_satisfies_protocol(self, hp_trace):
        score = evaluate_predictor(hp_trace[:400], Farmer(), k=3)
        assert 0.0 <= score.accuracy <= 1.0

    def test_evaluate_many_sorted(self, hp_trace):
        scores = evaluate_predictors(
            hp_trace[:400], {"ls": LastSuccessor(), "noop": NoopPredictor()}, k=1
        )
        assert scores[0].name == "ls"  # noop's NaN sorts last


class TestRegression:
    def test_fits_on_hp(self, hp_trace):
        fit = fit_attribute_regression(hp_trace)
        assert set(fit.feature_names) == {"user", "process", "host", "path"}
        assert fit.n_observations > 50
        assert -1.0 <= fit.r_squared <= 1.0

    def test_pathless_trace_drops_path_feature(self, ins_trace):
        fit = fit_attribute_regression(ins_trace)
        assert "path" not in fit.feature_names

    def test_too_few_pairs_raises(self):
        with pytest.raises(ValueError):
            fit_attribute_regression(sequence_records([1, 2]))

    def test_summary_rows_complete(self, hp_trace):
        fit = fit_attribute_regression(hp_trace[:800])
        rows = dict(fit.summary_rows())
        assert "R^2" in rows and "(intercept)" in rows

    def test_process_agreement_predicts_correlation(self, hp_trace):
        """Same-process overlap should be a positive predictor — the
        regression-level restatement of Figure 1's pid bar."""
        fit = fit_attribute_regression(hp_trace)
        coefs = dict(fit.ranked_attributes())
        assert coefs["process"] > 0


class TestExtensionExperiments:
    def test_run_predictors(self):
        result = run_predictors(n_events=1200, seeds=(1,))
        acc = result.data["accuracy"]
        assert "FARMER" in acc and "Nexus" in acc
        assert acc["LastSuccessor"] < max(acc.values())

    def test_run_regression(self):
        result = run_regression(n_events=1200)
        assert "process" in result.data["coefficients"]
        assert result.render()
