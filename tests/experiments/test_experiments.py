"""Integration tests: every experiment runs at reduced scale and its
paper-shape acceptance criteria (DESIGN.md §5) hold."""

import math

import pytest

from repro.experiments import fig1, fig3, fig5, fig6, fig7, fig8
from repro.experiments import (
    ablations,
    layout_experiment,
    service_experiment,
    table2,
    table3,
    table4,
)

SMALL = {"n_events": 2500, "seeds": (1, 2)}


@pytest.fixture(scope="module")
def fig1_result():
    return fig1.run(**SMALL)


@pytest.fixture(scope="module")
def fig7_result():
    return fig7.run(n_events=4000, seeds=(1, 2))


class TestFig1:
    def test_none_is_lowest_everywhere(self, fig1_result):
        for trace, per_filter in fig1_result.data["matrix"].items():
            none_p = per_filter["none"]
            for label, value in per_filter.items():
                if label == "none" or math.isnan(value):
                    continue
                assert value > none_p, f"{trace}: {label} not above 'none'"

    def test_attributes_differ_across_traces(self, fig1_result):
        matrix = fig1_result.data["matrix"]
        pid_values = [matrix[t]["pid"] for t in matrix]
        assert max(pid_values) - min(pid_values) > 0.01

    def test_renders(self, fig1_result):
        out = fig1_result.render()
        assert "none" in out and "hp" in out


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run(
            n_events=2500, seeds=(1, 2), traces=("hp",), thresholds=(0.2, 0.4, 0.8)
        )

    def test_hit_declines_at_high_threshold(self, result):
        series = result.data["matrix"]["hp"][0.7]
        assert series[0.8] < series[0.4]

    def test_blend_beats_extremes_at_operating_point(self, result):
        at_04 = {p: s[0.4] for p, s in result.data["matrix"]["hp"].items()}
        assert at_04[0.7] > at_04[0.0]
        assert at_04[0.7] >= at_04[1.0] - 0.02  # within noise of semantics-only


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run(n_events=2500, seeds=(1,), traces=("hp",))

    def test_fifteen_combinations(self, result):
        assert len(result.data["matrix"]["hp"]) == 15

    def test_spread_is_visible(self, result):
        values = list(result.data["matrix"]["hp"].values())
        assert max(values) - min(values) > 0.005  # >= 0.5pp


class TestFig6:
    def test_knee_shape(self):
        result = fig6.run(n_events=2500, seeds=(1, 2), thresholds=(0.2, 0.4, 0.9))
        series = result.data["series"]
        # response at the operating point is no worse than slightly above
        # the low-threshold value, and clearly better than at 0.9
        assert series[0.4] <= series[0.2] * 1.05
        assert series[0.4] < series[0.9]


class TestFig7:
    def test_fpa_highest_everywhere(self, fig7_result):
        for trace, per_policy in fig7_result.data["matrix"].items():
            fpa = per_policy["FPA"]["hit_ratio"]
            assert fpa > per_policy["Nexus"]["hit_ratio"], trace
            assert fpa > per_policy["LRU"]["hit_ratio"], trace

    def test_fpa_accuracy_beats_nexus(self, fig7_result):
        for trace, per_policy in fig7_result.data["matrix"].items():
            assert (
                per_policy["FPA"]["accuracy"] > per_policy["Nexus"]["accuracy"]
            ), trace


class TestFig8:
    def test_fpa_fastest(self):
        result = fig8.run(n_events=4000, seeds=(1, 2), traces=("hp", "llnl"))
        for trace, rts in result.data["matrix"].items():
            assert rts["FPA"] < rts["Nexus"], trace
            assert rts["FPA"] < rts["LRU"], trace


class TestTable2:
    def test_exact_match(self):
        result = table2.run()
        assert result.data["all_match"]

    def test_renders_all_pairs(self):
        out = table2.run().render()
        for cell in ("0.7143", "0.6875", "0.0625"):
            assert cell in out


class TestTable3:
    def test_accuracy_gap(self):
        result = table3.run(n_events=4000, seeds=(1, 2))
        measured = result.data["measured"]
        assert measured["FARMER"] - measured["Nexus"] > 0.10


class TestTable4:
    def test_ordering_and_bound(self):
        result = table4.run(n_events=2500)
        matrix = result.data["matrix"]
        per_file = {t: matrix[t]["bytes_per_file"] for t in matrix}
        assert all(v > 0 for v in per_file.values())
        extrapolated = {t: matrix[t]["extrapolated_mb"] for t in matrix}
        # paper ordering: LLNL >> HP > RES > INS
        assert extrapolated["llnl"] > extrapolated["hp"]
        assert extrapolated["hp"] > extrapolated["res"]
        assert extrapolated["res"] > extrapolated["ins"]
        # same order of magnitude as the paper's <100MB-class numbers
        # (Python-object overhead plus the similarity fast-path caches —
        # per-vector scalar sets, the path-id memo — land the
        # extrapolation roughly an order above the paper's C structs)
        assert extrapolated["llnl"] < 2500


class TestAblations:
    def test_dpa_ipa(self):
        result = ablations.run_dpa_ipa(n_events=2500, seeds=(1, 2), traces=("hp",))
        per = result.data["matrix"]["hp"]
        assert per["ipa"] >= per["dpa"] - 0.02

    def test_lda(self):
        result = ablations.run_lda(n_events=2500, seeds=(1,), traces=("hp",))
        assert set(result.data["matrix"]["hp"]) == {"lda", "uniform"}

    def test_sv_policy_merge_wins_on_shared_workload(self):
        result = ablations.run_sv_policy(n_events=2500, seeds=(1, 2), traces=("ins",))
        per = result.data["matrix"]["ins"]
        assert per["merge"] > per["latest"] - 0.02
        assert per["merge"] > per["first"] - 0.02


class TestLayout:
    def test_grouping_reduces_seeks(self):
        result = layout_experiment.run(n_events=2500, seeds=(1,))
        assert result.data["seek_ratio"] < 1.0
        assert result.data["latency_ratio"] < 1.0


class TestServiceExperiment:
    @pytest.fixture(scope="class")
    def result(self):
        """One shared run — three tests previously re-ran the whole
        experiment each (same parameters, ~3x the wall clock)."""
        return service_experiment.run(n_events=2500, seeds=(1,))

    def test_sharded_prefetch_economy(self, result):
        """Co-located shards issue far fewer prefetches than the global
        engine at a comparable hit ratio, at every partitioned scale."""
        for n_mds in (2, 4):
            sharded = result.data[f"sharded@{n_mds}"]
            global_ = result.data[f"global@{n_mds}"]
            assert sharded["issued"] < global_["issued"]
            assert sharded["hit_ratio"] >= global_["hit_ratio"] - 0.02
        assert "global@1" in result.data
        assert result.render()

    def test_routed_prefetch_beats_candidate_drop(self, result):
        """Acceptance: forwarding cross-server candidates to the owning
        MDS yields a strictly higher hit ratio than dropping them, at
        the same per-request candidate budget and queue limits."""
        for n_mds in (2, 4):
            routed = result.data[f"routed@{n_mds}"]
            sharded = result.data[f"sharded@{n_mds}"]
            assert routed["hit_ratio"] > sharded["hit_ratio"]
            assert routed["forwarded"] > 0
            assert sharded["forwarded"] == 0

    def test_replication_transparent_in_cluster_sim(self, result):
        """The replicated engine's simulation metrics equal the
        unreplicated sharded run exactly — standby upkeep never changes
        what the service mines or predicts."""
        assert result.data["replicated@4"] == result.data["sharded@4"]

    def test_failover_metrics_recorded(self, result):
        failover = result.data["failover"]
        assert failover["promote_s"] >= 0.0
        assert failover["reseed_s"] > 0.0
        assert failover["n_standby_syncs"] >= 1.0
        # structural only — asserting a band on a wall-clock ratio of
        # two timed runs flakes on loaded CI runners
        assert failover["sync_overhead_ratio"] > 0.0
