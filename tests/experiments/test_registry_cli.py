"""Tests for the experiment registry and the CLI."""

import pytest

from repro.errors import UnknownExperimentError
from repro.experiments.registry import (
    EXPERIMENTS,
    experiment_ids,
    get_experiment,
    run_experiment,
)
from repro.cli import build_parser, main


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        ids = set(experiment_ids())
        for required in (
            "fig1",
            "fig3",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "table2",
            "table3",
            "table4",
        ):
            assert required in ids

    def test_extension_experiments_registered(self):
        ids = set(experiment_ids())
        assert "ext_tiering" in ids

    def test_get_known(self):
        exp = get_experiment("fig7")
        assert exp.paper_artifact == "Figure 7"

    def test_get_unknown_raises(self):
        with pytest.raises(UnknownExperimentError):
            get_experiment("fig99")

    def test_run_experiment_kwargs(self):
        result = run_experiment("table2")
        assert result.experiment_id == "table2"

    def test_descriptor_ids_consistent(self):
        for key, exp in EXPERIMENTS.items():
            assert key == exp.experiment_id


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "table4" in out

    def test_run_table2(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "0.7143" in out

    def test_run_with_scale(self, capsys):
        assert main(["run", "fig1", "--events", "800", "--seeds", "1"]) == 0
        out = capsys.readouterr().out
        assert "Figure 1" in out

    def test_storage_showdown(self, capsys):
        assert main(
            ["storage", "--tiering", "lru", "--events", "400", "--mds", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "fast hit" in out and "lru" in out

    def test_storage_scenario_json(self, capsys):
        assert main(
            [
                "storage",
                "pipeline",
                "--tiering",
                "correlated",
                "--events",
                "400",
                "--mds",
                "2",
                "--json",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert '"policy": "correlated"' in out
        assert '"workload": "pipeline"' in out

    def test_storage_rejects_unknown_workload(self, capsys):
        assert main(["storage", "nosuch", "--events", "200"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_storage_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["storage", "--tiering", "mru"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
