"""Tests for the directed weighted correlation graph."""

import pytest

from repro.errors import ConfigError
from repro.graph.correlation_graph import CorrelationGraph


class TestObserve:
    def test_paper_abcd_example(self):
        """Access ABCD: N_AB=1.0, N_AC=0.9, N_AD=0.8 (§3.2.2)."""
        g = CorrelationGraph(window=3)
        for fid in (0, 1, 2, 3):
            g.observe(fid)
        succ = g.successors(0)
        assert succ[1].weighted_count == pytest.approx(1.0)
        assert succ[2].weighted_count == pytest.approx(0.9)
        assert succ[3].weighted_count == pytest.approx(0.8)

    def test_window_limits_reach(self):
        g = CorrelationGraph(window=1)
        for fid in (0, 1, 2):
            g.observe(fid)
        assert 2 not in g.successors(0)
        assert 2 in g.successors(1)

    def test_self_edges_skipped(self):
        g = CorrelationGraph(window=2)
        g.observe(5)
        g.observe(5)
        assert 5 not in g.successors(5)

    def test_touched_predecessors_returned(self):
        g = CorrelationGraph(window=2)
        g.observe(0)
        g.observe(1)
        touched = g.observe(2)
        assert set(touched) == {0, 1}

    def test_duplicate_window_entries_counted_once(self):
        g = CorrelationGraph(window=4)
        for fid in (7, 1, 7, 2):
            g.observe(fid)
        # 7 appears twice in the window before 2; only the nearest counts
        assert g.successors(7)[2].weighted_count == pytest.approx(1.0)

    def test_access_count_raw(self):
        g = CorrelationGraph()
        for fid in (1, 2, 1, 1):
            g.observe(fid)
        assert g.access_count(1) == 3
        assert g.access_count(99) == 0


class TestFrequency:
    def test_definition(self):
        """F(A,B) = weighted N_AB / raw N_A."""
        g = CorrelationGraph(window=1)
        for fid in (0, 1, 0, 1, 0, 2):
            g.observe(fid)
        # N_0 = 3; edges 0->1 twice (weight 2.0), 0->2 once (1.0)
        assert g.frequency(0, 1) == pytest.approx(2.0 / 3.0)
        assert g.frequency(0, 2) == pytest.approx(1.0 / 3.0)

    def test_missing_edge_zero(self):
        g = CorrelationGraph()
        g.observe(0)
        assert g.frequency(0, 1) == 0.0
        assert g.frequency(9, 0) == 0.0

    def test_capped_at_one(self):
        g = CorrelationGraph(window=4)
        # file 0 accessed once, then many successors within the window
        for fid in (0, 1, 0, 1, 0, 1):
            g.observe(fid)
        assert g.frequency(0, 1) <= 1.0

    def test_frequencies_bulk(self):
        g = CorrelationGraph(window=2)
        for fid in (0, 1, 2):
            g.observe(fid)
        freqs = g.frequencies(0)
        assert set(freqs) == {1, 2}
        assert freqs[1] == g.frequency(0, 1)


class TestCapacity:
    def test_successor_eviction(self):
        g = CorrelationGraph(window=1, successor_capacity=2)
        # successors of 0: three distinct, weakest should be evicted
        for fid in (0, 1, 0, 1, 0, 2, 0, 3):
            g.observe(fid)
        succ = g.successors(0)
        assert len(succ) == 2
        assert 1 in succ  # strongest retained

    def test_counts(self):
        g = CorrelationGraph(window=2)
        for fid in (0, 1, 2, 0):
            g.observe(fid)
        assert g.n_nodes() == 3
        assert g.n_edges() > 0
        assert set(g.nodes()) == {0, 1, 2}

    def test_window_contents(self):
        g = CorrelationGraph(window=3)
        for fid in (1, 2, 3, 4):
            g.observe(fid)
        assert g.window_contents() == (2, 3, 4)

    def test_validation(self):
        with pytest.raises(ConfigError):
            CorrelationGraph(window=0)
        with pytest.raises(ConfigError):
            CorrelationGraph(successor_capacity=0)

    def test_approx_bytes_grows(self):
        g = CorrelationGraph()
        empty = g.approx_bytes()
        for fid in range(100):
            g.observe(fid)
        assert g.approx_bytes() > empty


class TestChangeTicks:
    def test_unseen_is_zero(self):
        assert CorrelationGraph().change_tick(7) == 0

    def test_own_access_bumps(self):
        g = CorrelationGraph()
        g.observe(1)
        t1 = g.change_tick(1)
        assert t1 > 0
        g.observe(1)
        assert g.change_tick(1) > t1

    def test_edge_reinforcement_bumps_predecessor(self):
        g = CorrelationGraph(window=2)
        g.observe(1)
        t1 = g.change_tick(1)
        g.observe(2)  # reinforces 1 -> 2
        assert g.change_tick(1) > t1

    def test_untouched_node_stable(self):
        g = CorrelationGraph(window=1)
        for fid in (1, 2, 3):
            g.observe(fid)
        t1 = g.change_tick(1)
        g.observe(9)  # 1 is out of the window: no edge from 1
        assert g.change_tick(1) == t1

    def test_window_is_bounded_deque(self):
        """The sliding window keeps exactly `window` recent fids."""
        g = CorrelationGraph(window=2)
        for fid in range(10):
            g.observe(fid)
        assert g.window_contents() == (8, 9)


class TestMigrationSeam:
    """pop_node / adopt_node / clone on the flat array representation:
    the shard-rebalance and standby-sync seams move whole nodes (or
    refresh them in place), so the arrays and their slot index must
    survive the trip exactly."""

    @staticmethod
    def _arrays_of(node):
        return (
            node.access_count,
            node.change_tick,
            node.succ_version,
            node.succ_fids[:],
            node.succ_weights[:],
            node.succ_raw[:],
            node.succ_last[:],
        )

    def test_pop_adopt_round_trip(self):
        src = CorrelationGraph(window=3)
        for fid in (0, 1, 2, 3, 1, 2, 0, 4, 2, 1):
            src.observe(fid)
        node = src.node_map()[0]
        before = self._arrays_of(node)
        popped = src.pop_node(0)
        assert popped is node
        assert 0 not in src.node_map()
        dst = CorrelationGraph(window=3)
        dst.adopt_node(0, popped)
        adopted = dst.node_map()[0]
        assert self._arrays_of(adopted) == before
        # the slot index still answers lookups after the move, and the
        # dict view rebuilds from the arrays in insertion order
        for i, fid in enumerate(adopted.succ_fids):
            assert adopted.slot_of(fid) == i
        assert list(adopted.successors) == list(adopted.succ_fids)

    def test_pop_missing_returns_none(self):
        assert CorrelationGraph().pop_node(99) is None

    def test_clone_is_deep_on_arrays(self):
        g = CorrelationGraph(window=2)
        for fid in (0, 1, 2, 0, 1):
            g.observe(fid)
        node = g.node_map()[0]
        copy = node.clone()
        frozen = self._arrays_of(copy)
        g.observe(0)
        g.observe(1)  # reinforces 0 -> 1 in the original only
        assert self._arrays_of(copy) == frozen
        assert node.succ_weights != copy.succ_weights

    def test_copy_stats_from_refreshes_in_place(self):
        """The standby-sync delta path: same membership, stats moved by
        slice assignment — the refreshed copy matches a fresh clone."""
        g = CorrelationGraph(window=2)
        for fid in (0, 1, 2, 0, 1):
            g.observe(fid)
        node = g.node_map()[0]
        stale = node.clone()
        g.observe(0)
        g.observe(1)  # weight churn, no membership change
        assert stale.succ_version == node.succ_version
        assert stale.succ_weights != node.succ_weights
        stale.copy_stats_from(node)
        assert self._arrays_of(stale) == self._arrays_of(node.clone())
