"""Tests for the sorted, thresholded Correlator List."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.graph.correlator_list import CorrelatorList


class TestThreshold:
    def test_below_threshold_rejected(self):
        lst = CorrelatorList(threshold=0.4)
        assert not lst.update(1, 0.4)  # strict: must exceed
        assert not lst.update(2, 0.1)
        assert len(lst) == 0

    def test_above_threshold_accepted(self):
        lst = CorrelatorList(threshold=0.4)
        assert lst.update(1, 0.41)
        assert 1 in lst

    def test_decay_below_threshold_removes(self):
        lst = CorrelatorList(threshold=0.4)
        lst.update(1, 0.9)
        assert not lst.update(1, 0.2)
        assert 1 not in lst

    def test_validation(self):
        with pytest.raises(ConfigError):
            CorrelatorList(threshold=1.5)
        with pytest.raises(ConfigError):
            CorrelatorList(capacity=0)


class TestSorting:
    def test_descending_order(self):
        lst = CorrelatorList()
        for fid, degree in ((1, 0.5), (2, 0.9), (3, 0.7)):
            lst.update(fid, degree)
        assert [e.fid for e in lst.entries()] == [2, 3, 1]
        assert lst.is_sorted()

    def test_rerank_moves_entry(self):
        lst = CorrelatorList()
        lst.update(1, 0.5)
        lst.update(2, 0.6)
        lst.update(1, 0.95)
        assert [e.fid for e in lst.entries()] == [1, 2]

    def test_tie_broken_by_fid(self):
        lst = CorrelatorList()
        lst.update(9, 0.5)
        lst.update(3, 0.5)
        assert [e.fid for e in lst.entries()] == [3, 9]

    def test_top_k(self):
        lst = CorrelatorList()
        for fid in range(5):
            lst.update(fid, 0.1 * (fid + 1))
        top = lst.top(2)
        assert [e.fid for e in top] == [4, 3]
        assert lst.top(100) == lst.entries()


class TestCapacity:
    def test_weakest_evicted(self):
        lst = CorrelatorList(capacity=3)
        for fid, degree in ((1, 0.9), (2, 0.8), (3, 0.7), (4, 0.75)):
            lst.update(fid, degree)
        assert len(lst) == 3
        assert 3 not in lst
        assert 4 in lst

    def test_update_returns_false_when_self_evicted(self):
        lst = CorrelatorList(capacity=2)
        lst.update(1, 0.9)
        lst.update(2, 0.8)
        assert not lst.update(3, 0.1)  # weakest, immediately evicted
        assert 3 not in lst


class TestMisc:
    def test_degree_of(self):
        lst = CorrelatorList()
        lst.update(1, 0.66)
        assert lst.degree_of(1) == 0.66
        assert lst.degree_of(2) is None

    def test_discard(self):
        lst = CorrelatorList()
        lst.update(1, 0.5)
        lst.discard(1)
        lst.discard(99)  # no-op
        assert len(lst) == 0

    def test_same_degree_update_noop(self):
        lst = CorrelatorList()
        lst.update(1, 0.5)
        assert lst.update(1, 0.5)
        assert len(lst) == 1

    def test_iter(self):
        lst = CorrelatorList()
        lst.update(1, 0.5)
        assert [e.fid for e in lst] == [1]

    def test_approx_bytes(self):
        lst = CorrelatorList()
        empty = lst.approx_bytes()
        for fid in range(10):
            lst.update(fid, 0.5 + fid * 0.01)
        assert lst.approx_bytes() > empty


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=20),
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            ),
            max_size=60,
        )
    )
    def test_invariants_under_arbitrary_updates(self, updates):
        """Sortedness, threshold and capacity hold after any sequence."""
        lst = CorrelatorList(threshold=0.3, capacity=5)
        for fid, degree in updates:
            lst.update(fid, degree)
        entries = lst.entries()
        assert lst.is_sorted()
        assert len(entries) <= 5
        assert all(e.degree > 0.3 for e in entries)
        fids = [e.fid for e in entries]
        assert len(fids) == len(set(fids))  # no duplicates


class TestRebuild:
    """The one-pass bulk kernel vs the entry-by-entry update path."""

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=60),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            max_size=40,
        ),
        st.dictionaries(
            st.integers(min_value=0, max_value=60),
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            max_size=40,
        ),
    )
    def test_rebuild_equals_update_stream(self, previous, candidates):
        """``rebuild(candidates)`` is bit-identical to clearing and then
        offering every candidate through ``update`` — whatever state the
        list held before, and in any offer order."""
        bulk = CorrelatorList(threshold=0.3, capacity=5)
        entrywise = CorrelatorList(threshold=0.3, capacity=5)
        for fid, degree in previous.items():
            bulk.update(fid, degree)
            entrywise.update(fid, degree)
        bulk.rebuild(candidates.items())
        for fid in [e.fid for e in entrywise.entries()]:
            entrywise.discard(fid)
        for fid, degree in candidates.items():
            entrywise.update(fid, degree)
        assert bulk.entries() == entrywise.entries()
        assert bulk.is_sorted()
        expected = sorted(
            ((f, d) for f, d in candidates.items() if d > 0.3),
            key=lambda item: (-item[1], item[0]),
        )[:5]
        assert [(e.fid, e.degree) for e in bulk.entries()] == expected

    def test_rebuild_capacity_cut_is_true_top_k(self):
        lst = CorrelatorList(threshold=0.0, capacity=3)
        lst.rebuild([(i, 0.1 * (i + 1)) for i in range(8)])
        assert [e.fid for e in lst.entries()] == [7, 6, 5]

    def test_rebuild_replaces_existing_state(self):
        lst = CorrelatorList(threshold=0.0, capacity=8)
        for fid in range(5):
            lst.update(fid, 0.9)
        lst.rebuild([(9, 0.5)])
        assert [e.fid for e in lst.entries()] == [9]
        assert lst.degree_of(0) is None

    def test_rebuild_counts_no_insorts(self):
        lst = CorrelatorList(threshold=0.0, capacity=8)
        lst.rebuild([(i, 0.5) for i in range(8)])
        assert lst.insort_ops == 0
        lst.update(9, 0.9)
        assert lst.insort_ops == 1


class TestBisectRemove:
    """Satellite: ``_remove`` locates the victim by bisect on the
    ``(-degree, fid)`` sort key; behaviour identical to a linear scan."""

    @staticmethod
    def _linear_reference(entries, fid):
        return [e for e in entries if e.fid != fid]

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=30),
            # a coarse float grid makes degree ties (the interesting
            # bisect case) common instead of vanishingly rare
            st.sampled_from([0.1, 0.2, 0.2, 0.5, 0.5, 0.5, 0.9]),
            min_size=1,
            max_size=25,
        ),
        st.data(),
    )
    def test_discard_matches_linear_scan(self, degrees, data):
        lst = CorrelatorList(threshold=0.0, capacity=32)
        for fid, degree in degrees.items():
            lst.update(fid, degree)
        victim = data.draw(st.sampled_from(sorted(degrees)))
        expected = self._linear_reference(lst.entries(), victim)
        lst.discard(victim)
        assert lst.entries() == expected
        assert victim not in lst
        assert lst.is_sorted()

    def test_discard_among_ties(self):
        lst = CorrelatorList(threshold=0.0, capacity=32)
        for fid in (3, 7, 11, 15):
            lst.update(fid, 0.5)
        lst.discard(11)
        assert [e.fid for e in lst.entries()] == [3, 7, 15]

    def test_discard_absent_fid_noop(self):
        lst = CorrelatorList(threshold=0.0)
        lst.update(1, 0.5)
        lst.discard(99)
        assert len(lst) == 1
