"""Tests for the Linear Decremented Assignment weights."""

import pytest

from repro.errors import ConfigError
from repro.graph.lda import lda_weight, uniform_weight, weight_schedule


class TestLdaWeight:
    def test_paper_example(self):
        """ABCD: B adds 1.0, C adds 0.9, D adds 0.8 (§3.2.2)."""
        assert lda_weight(1) == pytest.approx(1.0)
        assert lda_weight(2) == pytest.approx(0.9)
        assert lda_weight(3) == pytest.approx(0.8)

    def test_floor(self):
        assert lda_weight(100, decrement=0.1, floor=0.05) == pytest.approx(0.05)
        assert lda_weight(100, decrement=0.1, floor=0.0) == pytest.approx(0.0)

    def test_custom_decrement(self):
        assert lda_weight(2, decrement=0.25) == pytest.approx(0.75)

    def test_monotone_decreasing(self):
        weights = [lda_weight(d) for d in range(1, 12)]
        assert all(a >= b for a, b in zip(weights, weights[1:]))

    def test_validation(self):
        with pytest.raises(ConfigError):
            lda_weight(0)
        with pytest.raises(ConfigError):
            lda_weight(1, decrement=1.5)
        with pytest.raises(ConfigError):
            lda_weight(1, floor=-0.1)


class TestUniformWeight:
    def test_always_one(self):
        assert uniform_weight(1) == 1.0
        assert uniform_weight(99) == 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            uniform_weight(0)


class TestSchedule:
    def test_lookup(self):
        assert weight_schedule("lda") is lda_weight
        assert weight_schedule("uniform") is uniform_weight

    def test_unknown(self):
        with pytest.raises(ConfigError):
            weight_schedule("exp")
