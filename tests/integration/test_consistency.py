"""Cross-component consistency checks: independent implementations of the
same quantity must agree."""

import pytest

import repro
from repro.core.extractor import Extractor
from repro.vsm.matrix import SemanticMatrix
from repro.vsm.similarity import dpa_similarity
from repro.vsm.vocabulary import Vocabulary


class TestBulkVsOnlineSimilarity:
    def test_matrix_matches_pairwise_dpa(self, hp_trace):
        """The vectorised all-pairs DPA must equal the online merge-based
        DPA for duplicate-free vectors."""
        extractor = Extractor(("user", "process", "host", "path"), Vocabulary())
        seen = {}
        for r in hp_trace:
            if r.fid not in seen:
                seen[r.fid] = extractor.extract(r)
            if len(seen) == 25:
                break
        matrix = SemanticMatrix()
        vectors = list(seen.items())
        for fid, vec in vectors:
            matrix.add(fid, vec)
        bulk = matrix.pairwise_dpa()
        for i in range(len(vectors)):
            for j in range(len(vectors)):
                fid_i, vec_i = vectors[i]
                fid_j, vec_j = vectors[j]
                if len(set(vec_i.dpa_items())) != len(vec_i.dpa_items()):
                    continue  # duplicate items: set vs bag semantics differ
                if len(set(vec_j.dpa_items())) != len(vec_j.dpa_items()):
                    continue
                assert bulk[i, j] == pytest.approx(
                    dpa_similarity(vec_i, vec_j)
                ), (fid_i, fid_j)


class TestGraphVsTraceStats:
    def test_graph_frequency_reflects_successor_counts(self, ins_trace):
        """Window-1 graph frequencies must match raw successor counts."""
        from repro.graph.correlation_graph import CorrelationGraph
        from repro.traces.stats import successor_counts

        graph = CorrelationGraph(window=1)
        for r in ins_trace:
            graph.observe(r.fid)
        counts = successor_counts(ins_trace, window=1)
        checked = 0
        for src, counter in counts.items():
            n_src = graph.access_count(src)
            for dst, n in counter.items():
                expected = min(1.0, n / n_src)
                assert graph.frequency(src, dst) == pytest.approx(expected)
                checked += 1
                if checked > 300:
                    return
        assert checked > 0


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolvable(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_main_module_importable(self):
        import repro.__main__  # noqa: F401
