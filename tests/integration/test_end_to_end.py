"""End-to-end flows exercising the full public API surface."""

import pytest

from repro import (
    Farmer,
    FarmerConfig,
    FarmerPrefetcher,
    NoPrefetcher,
    PredictorPrefetcher,
    SimulationConfig,
    TRACE_NAMES,
    generate_trace,
    run_simulation,
)
from repro.baselines import Nexus
from repro.traces import read_csv, write_csv


class TestMineAndQuery:
    @pytest.mark.parametrize("name", TRACE_NAMES)
    def test_mine_every_trace(self, name):
        trace = generate_trace(name, 800, seed=3)
        farmer = Farmer()
        farmer.mine(trace)
        stats = farmer.stats()
        assert stats.n_observed == 800
        assert stats.n_lists > 0

    def test_predictions_are_real_files(self, hp_trace):
        farmer = Farmer()
        farmer.mine(hp_trace)
        known = {r.fid for r in hp_trace}
        for r in hp_trace[:100]:
            for fid in farmer.predict(r.fid):
                assert fid in known


class TestTraceFileWorkflow:
    def test_mine_from_csv(self, tmp_path, hp_trace):
        """A real deployment mines from trace files, not memory."""
        path = tmp_path / "trace.csv"
        write_csv(hp_trace[:500], path)
        farmer = Farmer()
        for record in read_csv(path):
            farmer.observe(record)
        assert farmer.stats().n_observed == 500


class TestFullComparison:
    def test_three_policies_one_trace(self, hp_trace):
        cfg = SimulationConfig(cache_capacity=72)
        fpa = run_simulation(hp_trace, FarmerPrefetcher(Farmer()), cfg)
        nexus = run_simulation(hp_trace, PredictorPrefetcher(Nexus(), k=5), cfg)
        lru = run_simulation(hp_trace, NoPrefetcher(), cfg)
        assert fpa.demand_requests == nexus.demand_requests == lru.demand_requests
        # the paper's headline ordering
        assert fpa.hit_ratio > lru.hit_ratio
        assert fpa.prefetch_accuracy > nexus.prefetch_accuracy

    def test_simulation_reports_complete(self, ins_trace):
        report = run_simulation(
            ins_trace, FarmerPrefetcher(Farmer()), SimulationConfig(cache_capacity=48)
        )
        assert report.makespan_ns > 0
        assert report.miner_memory_bytes > 0
        assert report.p50_response_ns <= report.p95_response_ns
        assert 0 <= report.hit_ratio <= 1

    def test_reproducibility_across_runs(self, res_trace):
        def once():
            return run_simulation(
                res_trace,
                FarmerPrefetcher(Farmer(FarmerConfig())),
                SimulationConfig(cache_capacity=72),
            )

        assert once() == once()
