"""Smoke tests: the example scripts run end-to-end at reduced scale."""

import runpy
import sys

import pytest


def run_example(monkeypatch, capsys, name: str, argv: list[str]):
    monkeypatch.setattr(sys, "argv", [name, *argv])
    runpy.run_module(f"examples.{name}" if False else name, run_name="__main__")
    return capsys.readouterr().out


@pytest.fixture
def run_script(monkeypatch, capsys):
    def _run(name: str, argv: list[str] = ()):  # noqa: B006
        monkeypatch.setattr(sys, "argv", [f"examples/{name}.py", *argv])
        runpy.run_path(f"examples/{name}.py", run_name="__main__")
        return capsys.readouterr().out

    return _run


class TestExamples:
    def test_prefetch_comparison(self, run_script):
        out = run_script("prefetch_comparison", ["--events", "600"])
        assert "FPA" in out and "Nexus" in out and "LRU" in out

    def test_attribute_study(self, run_script):
        out = run_script("attribute_study", ["--trace", "ins", "--events", "600"])
        assert "successor predictability" in out
        assert "attribute combination" in out

    def test_threshold_tuning(self, run_script):
        out = run_script("threshold_tuning", ["--trace", "hp", "--events", "500"])
        assert "max_strength" in out
        assert "p=0.7" in out
