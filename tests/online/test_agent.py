"""Agents: arrival patterns, deterministic replay, live file tailing."""

import json
import threading
import time

import pytest

from repro.errors import ConfigError
from repro.online.agent import (
    BurstyRate,
    ConstantRate,
    DiurnalRate,
    FileTailAgent,
    ReplayAgent,
)
from repro.online.pipeline import Admission
from tests.conftest import sequence_records


class FakeSink:
    """Scripted sink: answers offers from a plan, then accepts."""

    def __init__(self, plan=()):
        self.plan = list(plan)
        self.offers = []

    def offer(self, record):
        self.offers.append(record)
        if self.plan:
            return self.plan.pop(0)
        return Admission.ACCEPTED


class TestPatterns:
    def test_constant_rate(self):
        pattern = ConstantRate(100.0)
        assert pattern.rate(0.0) == 100.0
        assert pattern.arrivals(3.0, 0.5) == pytest.approx(50.0)

    def test_bursty_phases(self):
        pattern = BurstyRate(base=10.0, burst=100.0, period=10.0, duty=0.2)
        assert pattern.rate(0.0) == 100.0  # in the burst
        assert pattern.rate(1.9) == 100.0
        assert pattern.rate(2.1) == 10.0  # quiet phase
        assert pattern.rate(12.1) == 10.0  # next period, same phase

    def test_diurnal_trough_and_peak(self):
        pattern = DiurnalRate(trough=10.0, peak=90.0, period=60.0)
        assert pattern.rate(0.0) == pytest.approx(10.0)
        assert pattern.rate(30.0) == pytest.approx(90.0)
        assert pattern.rate(15.0) == pytest.approx(50.0)

    @pytest.mark.parametrize(
        "build",
        [
            lambda: ConstantRate(0.0),
            lambda: ConstantRate(-5.0),
            lambda: BurstyRate(base=-1.0, burst=10.0),
            lambda: BurstyRate(base=1.0, burst=0.0),
            lambda: BurstyRate(base=1.0, burst=10.0, duty=1.5),
            lambda: BurstyRate(base=1.0, burst=10.0, period=0.0),
            lambda: DiurnalRate(trough=-1.0, peak=10.0),
            lambda: DiurnalRate(trough=20.0, peak=10.0),
            lambda: DiurnalRate(trough=1.0, peak=2.0, period=0.0),
        ],
    )
    def test_pattern_validation(self, build):
        with pytest.raises(ConfigError):
            build()


class TestReplayAgent:
    def test_batches_integrate_the_rate_exactly(self):
        """100/s at 10ms ticks is exactly one record per tick."""
        records = sequence_records(range(10))
        agent = ReplayAgent(records, ConstantRate(100.0), tick_s=0.01)
        sizes = [len(b) for b in agent.batches()]
        assert sizes == [1] * 10

    def test_fractional_arrivals_carry_over(self):
        """150/s at 10ms ticks = 1.5/tick: the schedule alternates 1, 2
        instead of rounding the half-arrival away every tick."""
        records = sequence_records(range(9))
        agent = ReplayAgent(records, ConstantRate(150.0), tick_s=0.01)
        sizes = [len(b) for b in agent.batches()]
        assert sizes == [1, 2, 1, 2, 1, 2]
        assert sum(sizes) == 9

    def test_batches_are_deterministic(self):
        records = sequence_records(range(50))
        agent = ReplayAgent(
            records, BurstyRate(base=100.0, burst=1000.0, period=0.1)
        )
        first = [len(b) for b in agent.batches()]
        second = [len(b) for b in agent.batches()]
        assert first == second
        assert sum(first) == 50

    def test_batches_preserve_record_order(self):
        records = sequence_records(range(20))
        agent = ReplayAgent(records, ConstantRate(350.0))
        replayed = [r for batch in agent.batches() for r in batch]
        assert replayed == records

    def test_run_offers_everything_with_accepting_sink(self):
        records = sequence_records(range(25))
        sink = FakeSink()
        report = ReplayAgent(records, ConstantRate(10_000.0)).run(sink)
        assert report.n_offered == report.n_accepted == 25
        assert report.n_deferred == report.n_shed == report.n_abandoned == 0
        assert sink.offers == records

    def test_run_counts_degraded_and_shed(self):
        records = sequence_records(range(3))
        sink = FakeSink(
            [
                Admission.ACCEPTED,
                Admission.ACCEPTED_ECHO_SHED,
                Admission.SHED,
            ]
        )
        report = ReplayAgent(records).run(sink)
        assert report.n_accepted == 2
        assert report.n_echo_degraded == 1
        assert report.n_shed == 1

    def test_run_retries_deferred_then_succeeds(self):
        records = sequence_records(range(1))
        sink = FakeSink([Admission.DEFERRED] * 3)
        sleeps = []
        report = ReplayAgent(
            records, defer_retries=5, retry_delay_s=0.25, sleep=sleeps.append
        ).run(sink)
        assert report.n_deferred == 3
        assert report.n_accepted == 1
        assert report.n_abandoned == 0
        assert sleeps == [0.25] * 3  # backpressure cost the agent sleep

    def test_run_abandons_after_retries_exhausted(self):
        records = sequence_records(range(1))
        sink = FakeSink([Admission.DEFERRED] * 100)
        report = ReplayAgent(
            records, defer_retries=4, retry_delay_s=0.0, sleep=lambda _: None
        ).run(sink)
        assert report.n_abandoned == 1
        assert report.n_accepted == 0
        assert report.n_deferred == 5  # initial offer + 4 retries

    def test_rejects_bad_tick(self):
        with pytest.raises(ConfigError):
            ReplayAgent([], tick_s=0.0)


class TestFileTailAgent:
    def _line(self, fid, ts=0):
        return json.dumps(
            {"ts": ts, "fid": fid, "uid": 1, "pid": 1, "host": 1, "op": "open"}
        )

    def test_tails_appends_until_stopped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(self._line(1) + "\n")
        agent = FileTailAgent(path, poll_interval_s=0.005)
        sink = FakeSink()
        reports = []
        thread = threading.Thread(target=lambda: reports.append(agent.run(sink)))
        thread.start()
        try:
            deadline = time.monotonic() + 5.0
            while len(sink.offers) < 1 and time.monotonic() < deadline:
                time.sleep(0.005)
            with open(path, "a") as fh:
                fh.write(self._line(2) + "\n" + self._line(3) + "\n")
            while len(sink.offers) < 3 and time.monotonic() < deadline:
                time.sleep(0.005)
        finally:
            agent.stop()
            thread.join(timeout=5.0)
        assert [r.fid for r in sink.offers] == [1, 2, 3]
        assert reports[0].n_accepted == 3

    def test_partial_line_waits_for_newline(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        full = self._line(7)
        path.write_text(full[: len(full) // 2])  # a writer mid-append
        agent = FileTailAgent(path, poll_interval_s=0.005)
        sink = FakeSink()
        thread = threading.Thread(target=lambda: agent.run(sink))
        thread.start()
        try:
            time.sleep(0.05)
            assert sink.offers == []  # never parses a half record
            with open(path, "a") as fh:
                fh.write(full[len(full) // 2 :] + "\n")
            deadline = time.monotonic() + 5.0
            while not sink.offers and time.monotonic() < deadline:
                time.sleep(0.005)
        finally:
            agent.stop()
            thread.join(timeout=5.0)
        assert [r.fid for r in sink.offers] == [7]

    def test_idle_timeout_ends_the_run(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(self._line(1) + "\n")
        agent = FileTailAgent(
            path, poll_interval_s=0.005, idle_timeout_s=0.02
        )
        report = agent.run(FakeSink())  # returns by itself: no stop() needed
        assert report.n_accepted == 1

    def test_missing_file_then_created(self, tmp_path):
        path = tmp_path / "late.jsonl"
        agent = FileTailAgent(path, poll_interval_s=0.005)
        sink = FakeSink()
        thread = threading.Thread(target=lambda: agent.run(sink))
        thread.start()
        try:
            time.sleep(0.02)
            path.write_text(self._line(9) + "\n")
            deadline = time.monotonic() + 5.0
            while not sink.offers and time.monotonic() < deadline:
                time.sleep(0.005)
        finally:
            agent.stop()
            thread.join(timeout=5.0)
        assert [r.fid for r in sink.offers] == [9]

    def test_rejects_bad_poll_interval(self, tmp_path):
        with pytest.raises(ConfigError):
            FileTailAgent(tmp_path / "x.jsonl", poll_interval_s=0.0)
