"""The HTTP query/admin plane, exercised over real sockets."""

import json
import urllib.error
import urllib.request

import pytest

from repro.core.config import FarmerConfig
from repro.online.api import AdminApiServer
from repro.online.pipeline import OnlineService
from tests.conftest import sequence_records


def get(url, path):
    with urllib.request.urlopen(url + path, timeout=10.0) as resp:
        return json.loads(resp.read())


def post(url, path, payload=None, raw=None):
    data = (
        raw
        if raw is not None
        else (json.dumps(payload).encode() if payload is not None else b"")
    )
    req = urllib.request.Request(url + path, data=data, method="POST")
    with urllib.request.urlopen(req, timeout=10.0) as resp:
        return json.loads(resp.read())


def status_of(exc_info):
    return exc_info.value.code, json.loads(exc_info.value.read())


@pytest.fixture
def served():
    """A mined OnlineService behind a live ephemeral-port API."""
    cfg = FarmerConfig(
        n_shards=2,
        max_strength=0.3,
        replication=True,
        standby_sync_interval=64,
    )
    online = OnlineService(cfg, batch_size=64)
    for r in sequence_records([1, 2, 3, 4] * 50):
        online.offer(r)
    online.drain()
    with AdminApiServer(online) as api:
        yield online, api.url


class TestQueryEndpoints:
    def test_health(self, served):
        online, url = served
        body = get(url, "/health")
        assert body["status"] == "ok"
        assert body["queue_depth"] == 0

    def test_predict_matches_service(self, served):
        online, url = served
        body = get(url, "/predict?fid=1&k=3")
        assert body == {"fid": 1, "predicted": online.predict(1, 3)}

    def test_correlators(self, served):
        online, url = served
        body = get(url, "/correlators?fid=1")
        expected = [
            {"fid": e.fid, "degree": e.degree} for e in online.correlators(1)
        ]
        assert body["correlators"] == expected

    def test_stats_and_snapshot(self, served):
        online, url = served
        stats = get(url, "/stats")
        assert stats["service"]["n_observed"] == 200
        assert stats["pipeline"]["n_accepted"] == 200
        snapshot = get(url, "/snapshot")
        assert snapshot["n_lists"] > 0

    def test_telemetry(self, served):
        _, url = served
        body = get(url, "/telemetry")
        assert body["counters"]["admission.accepted"] == 200
        assert "queue_depth" in body["series"]
        assert "ingest_batch" in body["endpoints"]


class TestAdminEndpoints:
    def test_ingest_jsonl_body(self, served):
        online, url = served
        lines = "\n".join(
            json.dumps({"ts": i, "fid": 9, "uid": 1, "pid": 1, "host": 1})
            for i in range(5)
        )
        body = post(url, "/ingest", raw=lines.encode())
        assert body["admission"] == {"accepted": 5}
        assert online.pipeline.counters().n_accepted == 205

    def test_failover_cycle_over_the_api(self, served):
        online, url = served
        post(url, "/fail_shard", {"shard": 1})
        assert online.service.failed_shards == (1,)
        body = post(url, "/promote_standby", {"shard": 1})
        assert body["shard"] == 1
        assert online.service.failed_shards == ()
        # the partition answers again
        assert isinstance(get(url, "/predict?fid=1")["predicted"], list)

    def test_rebalance_and_auto_rebalance(self, served):
        online, url = served
        body = post(url, "/rebalance", {"n_shards": 3})
        assert body["n_shards_after"] == 3
        auto = post(url, "/auto_rebalance")
        assert len(auto["weights"]) == 3

    def test_drain_reports(self, served):
        online, url = served
        for r in sequence_records([1, 2]):
            online.offer(r)
        body = post(url, "/drain")
        assert body["n_consumed"] == 2
        assert online.pipeline.depth == 0

    def test_shutdown_sets_the_event(self, served):
        online, url = served
        body = post(url, "/shutdown")
        assert body == {"shutting_down": True}


class TestErrorMapping:
    def test_unknown_path_404(self, served):
        _, url = served
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            get(url, "/nope")
        code, body = status_of(exc_info)
        assert code == 404 and "unknown path" in body["error"]

    def test_missing_arg_400(self, served):
        _, url = served
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            get(url, "/predict")
        code, body = status_of(exc_info)
        assert code == 400 and "fid" in body["error"]

    def test_non_int_arg_400(self, served):
        _, url = served
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            get(url, "/predict?fid=seven")
        code, _ = status_of(exc_info)
        assert code == 400

    def test_missing_body_field_400(self, served):
        _, url = served
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            post(url, "/fail_shard", {})
        code, body = status_of(exc_info)
        assert code == 400 and "shard" in body["error"]

    def test_bad_ingest_record_400(self, served):
        _, url = served
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            post(url, "/ingest", raw=b"not json\n")
        code, _ = status_of(exc_info)
        assert code == 400

    def test_service_refusal_maps_to_409(self):
        """promote_standby without replication: the service's
        ReplicationError surfaces as a 409, not a traceback."""
        online = OnlineService(FarmerConfig(n_shards=2))
        with AdminApiServer(online) as api:
            with pytest.raises(urllib.error.HTTPError) as exc_info:
                post(api.url, "/promote_standby", {"shard": 0})
            code, body = status_of(exc_info)
        assert code == 409 and "replication" in body["error"].lower()

    def test_invalid_json_body_400(self, served):
        _, url = served
        with pytest.raises(urllib.error.HTTPError) as exc_info:
            post(url, "/fail_shard", raw=b"{broken")
        code, _ = status_of(exc_info)
        assert code == 400
