"""The acceptance property: online ingestion + drain ≡ batch ``mine()``.

A trace fed through the online service — agent offers, bounded-queue
admission, consumer batches through ``ingest_stream``, then a full
``drain()`` barrier — must answer every query bit-identically to a
batch ``mine()`` of the same records on an identically-configured
service. Online arrival changes *when* work happens, never what is
mined. Pinned over ≥6k-record traces, both router families, with
replication on (ISSUE 7 acceptance).
"""

import pytest

from repro.core.config import FarmerConfig
from repro.online.pipeline import Admission, AdmissionPolicy, OnlineService
from repro.service.sharded import ShardedFarmer
from tests.conftest import cached_trace


def assert_bit_identical(online_service, batch_service, records):
    """Every distinct fid's predict and correlators must agree, and the
    aggregate snapshots must be equal."""
    fids = sorted({r.fid for r in records})
    for fid in fids:
        assert online_service.predict(fid) == batch_service.predict(fid)
        assert online_service.correlators(fid) == batch_service.correlators(
            fid
        )
    assert online_service.snapshot() == batch_service.snapshot()


@pytest.mark.parametrize("router", ["hash", "consistent_hash"])
class TestDrainEquivalence:
    def config(self, router, **overrides):
        base = dict(
            n_shards=4,
            shard_policy=router,
            max_strength=0.3,
            replication=True,
            standby_sync_interval=512,
        )
        base.update(overrides)
        return FarmerConfig(**base)

    def test_online_after_drain_equals_batch_mine(self, router):
        """The headline property, 6k records, consumer thread live."""
        records = cached_trace("hp", 6_000, 13)
        cfg = self.config(router)
        with OnlineService(cfg, batch_size=128) as online:
            for record in records:
                assert online.offer(record) is Admission.ACCEPTED
                # capacity 4096 > 6000/consumer drain rate would flake:
                # keep the queue honest by draining inline if deep
                if online.pipeline.depth > 2_000:
                    online.drain()
            online.drain()
        batch = ShardedFarmer(cfg).mine(records)
        assert online.service.n_observed == batch.n_observed == len(records)
        assert_bit_identical(online, batch, records)

    def test_equivalence_without_consumer_thread(self, router):
        """drain() alone (no background consumer) is the same barrier."""
        records = cached_trace("hp", 6_000, 13)
        cfg = self.config(router)
        online = OnlineService(
            cfg,
            # the whole trace queues up front: watermarks wide open so
            # nothing degrades (degradation is test_overload_shedding's
            # subject, not this one's)
            policy=AdmissionPolicy(
                capacity=8_192, echo_watermark=1.0, defer_watermark=1.0
            ),
            batch_size=256,
        )
        for record in records:
            assert online.offer(record) is Admission.ACCEPTED
        online.drain()
        batch = ShardedFarmer(cfg).mine(records)
        assert_bit_identical(online, batch, records)

    def test_equivalence_with_batched_echo_interval(self, router):
        """Under the deferred echo drain schedule (echo_flush_interval
        K>0) the reference is the record-at-a-time ``observe`` loop:
        the cadence counter spans batch seams, so chunked online
        ingestion reproduces it exactly. (A single ``mine()`` places
        its echoes at its own one-batch barrier instead — a different,
        equally valid schedule — so it is the reference only at the
        just-in-time interval 0 the other tests pin.)"""
        records = cached_trace("hp", 6_000, 13)
        cfg = self.config(router, echo_flush_interval=64)
        online = OnlineService(
            cfg,
            policy=AdmissionPolicy(
                capacity=8_192, echo_watermark=1.0, defer_watermark=1.0
            ),
            batch_size=100,
        )
        for record in records:
            assert online.offer(record) is Admission.ACCEPTED
        online.drain()
        reference = ShardedFarmer(cfg)
        for record in records:
            reference.observe(record)
        reference.flush_echoes()  # drain() delivered the online side's
        assert online.service.n_boundary_echoes == reference.n_boundary_echoes
        assert_bit_identical(online, reference, records)


class TestIngestStreamEquivalence:
    """The seam underneath: chunked ingest_stream reproduces the
    reference schedule of its configured interval — one batch ``mine``
    at the just-in-time interval 0, the record-at-a-time ``observe``
    loop under a positive interval (whose accepted-request cadence the
    stream carries across batch seams)."""

    def stream_chunked(self, cfg, records, chunk=97):
        streamed = ShardedFarmer(cfg)
        for start in range(0, len(records), chunk):  # ragged batch seams
            streamed.ingest_stream(
                (r, True) for r in records[start : start + chunk]
            )
        streamed.flush_echoes()
        for index in range(len(streamed.shards)):
            streamed.flush_shard(index)
        return streamed

    def assert_same_answers(self, left, right, records):
        for fid in sorted({r.fid for r in records}):
            assert left.predict(fid) == right.predict(fid)
        assert left.snapshot() == right.snapshot()

    def test_multi_batch_ingest_equals_mine(self):
        records = cached_trace("hp", 6_000, 13)
        cfg = FarmerConfig(n_shards=4, max_strength=0.3)
        streamed = self.stream_chunked(cfg, records)
        batch = ShardedFarmer(cfg).mine(records)
        self.assert_same_answers(streamed, batch, records)

    def test_multi_batch_ingest_matches_observe_cadence(self):
        records = cached_trace("hp", 6_000, 13)
        cfg = FarmerConfig(
            n_shards=4, max_strength=0.3, echo_flush_interval=64
        )
        streamed = self.stream_chunked(cfg, records)
        reference = ShardedFarmer(cfg)
        for record in records:
            reference.observe(record)
        reference.flush_echoes()
        assert streamed.n_boundary_echoes == reference.n_boundary_echoes
        self.assert_same_answers(streamed, reference, records)

    def test_chunking_is_batch_size_independent(self):
        """The cadence property in one line: two different batch
        shapes of the same stream land on identical state."""
        records = cached_trace("hp", 3_000, 13)
        cfg = FarmerConfig(
            n_shards=4, max_strength=0.3, echo_flush_interval=64
        )
        a = self.stream_chunked(cfg, records, chunk=97)
        b = self.stream_chunked(cfg, records, chunk=512)
        self.assert_same_answers(a, b, records)
