"""``ShardedFarmer.ingest_stream``: the online consumer's batch seam.

Covers the two online twists over plain ``observe``: per-record echo
control (``allow_echo=False`` sheds the boundary echo and counts it)
and drop-and-count for failed-shard partitions, plus the per-destination
echo accounting surfaced through ``ServiceStats``.
"""

import pytest

from repro.core.config import FarmerConfig
from repro.service.sharded import ShardedFarmer
from tests.conftest import sequence_records


def boundary_trace(n=12):
    """fids alternating across a 2-shard hash split: every adjacent
    pair is a boundary, so every record from the second on echoes."""
    return sequence_records([2, 3] * (n // 2))


class TestStreamReport:
    def test_accepted_and_echoes_match_observe_path(self):
        cfg = FarmerConfig(n_shards=2, max_strength=0.0, weight_p=0.0)
        streamed = ShardedFarmer(cfg)
        reference = ShardedFarmer(cfg)
        records = boundary_trace(12)
        report = streamed.ingest_stream((r, True) for r in records)
        for r in records:
            reference.observe(r)
        assert report.n_accepted == 12
        assert report.n_echoes_shed == 0
        assert report.n_dropped_failed == 0
        assert streamed.n_boundary_echoes == reference.n_boundary_echoes
        assert report.n_echoes_placed == reference.n_boundary_echoes

    def test_multi_batch_carries_boundary_state(self):
        """The predecessor-owner carry across batch seams: a boundary
        pair split across two ingest_stream calls still echoes."""
        cfg = FarmerConfig(n_shards=2, max_strength=0.0, weight_p=0.0)
        service = ShardedFarmer(cfg)
        first, second = sequence_records([2, 3])
        service.ingest_stream([(first, True)])
        report = service.ingest_stream([(second, True)])
        assert report.n_echoes_placed == 1
        assert service.n_boundary_echoes == 1

    def test_op_filter_skips_without_counting(self):
        cfg = FarmerConfig(
            n_shards=2, max_strength=0.0, op_filter=("open",)
        )
        service = ShardedFarmer(cfg)
        records = sequence_records([2, 3], op="read")
        report = service.ingest_stream((r, True) for r in records)
        assert report.n_accepted == 0
        assert service.n_observed == 0


class TestEchoShedding:
    def test_allow_echo_false_sheds_and_counts(self):
        cfg = FarmerConfig(n_shards=2, max_strength=0.0, weight_p=0.0)
        service = ShardedFarmer(cfg)
        records = boundary_trace(8)  # 7 boundary transitions
        report = service.ingest_stream((r, False) for r in records)
        assert report.n_accepted == 8
        assert report.n_echoes_placed == 0
        assert report.n_echoes_shed == 7
        assert service.n_echoes_shed == 7
        # the boundary *happened* (geometry is truthful), the delivery
        # was sacrificed
        assert service.n_boundary_echoes == 7

    def test_shed_echo_loses_only_the_cross_shard_edge(self):
        """An echo-shed record still mines on its owner shard: only the
        predecessor shard's view of the pair is given up."""
        cfg = FarmerConfig(n_shards=2, max_strength=0.0, weight_p=0.0)
        full = ShardedFarmer(cfg)
        degraded = ShardedFarmer(cfg)
        records = sequence_records([2, 3, 2, 3])
        full.ingest_stream((r, True) for r in records)
        degraded.ingest_stream((r, False) for r in records)
        assert degraded.n_observed == full.n_observed
        # owner-shard mining is intact: shard 1 owns fid 3 and saw it
        assert degraded.shards[1].n_observed > 0
        # but the echoed cross-shard lists are missing on the neighbour
        assert degraded.shards[0].n_observed < full.shards[0].n_observed

    def test_shed_count_reaches_service_stats(self):
        cfg = FarmerConfig(n_shards=2, max_strength=0.0, weight_p=0.0)
        service = ShardedFarmer(cfg)
        service.ingest_stream((r, False) for r in boundary_trace(6))
        stats = service.stats()
        assert stats.n_echoes_shed == 5


class TestFailedShardDegradation:
    def make_failed(self):
        cfg = FarmerConfig(
            n_shards=2, max_strength=0.0, weight_p=0.0, replication=True
        )
        service = ShardedFarmer(cfg)
        service.fail_shard(1)
        return service

    def test_failed_partition_drops_and_counts(self):
        service = self.make_failed()
        records = boundary_trace(10)  # half owned by the failed shard
        report = service.ingest_stream((r, True) for r in records)
        assert report.n_accepted == 5
        assert report.n_dropped_failed == 5
        assert service.n_observed == 5  # only the healthy partition

    def test_echoes_to_failed_destination_drop_and_count_per_dest(self):
        service = self.make_failed()
        records = boundary_trace(10)
        service.ingest_stream((r, True) for r in records)
        # every surviving record (owner shard 0) follows a record owned
        # by failed shard 1, so its echo targets shard 1 and is dropped
        assert service.echo_drop_counts[1] > 0
        assert service.echo_drop_counts[0] == 0
        assert sum(service.echo_drop_counts) == service.stats().n_echoes_dropped

    def test_batch_entry_point_still_raises(self):
        from repro.errors import ShardFailedError

        service = self.make_failed()
        with pytest.raises(ShardFailedError):
            service.observe(sequence_records([3])[0])


class TestPerDestinationQueueDepths:
    """The queues fill under a positive flush interval on both ingest
    paths (``ingest_stream`` shares ``observe``'s accepted-request
    cadence, so its echoes queue and wait for the cadence point too)."""

    def make_queued(self):
        cfg = FarmerConfig(
            n_shards=2,
            max_strength=0.0,
            weight_p=0.0,
            echo_flush_interval=100,  # batched: queues actually fill
        )
        service = ShardedFarmer(cfg)
        for r in boundary_trace(8):
            service.observe(r)
        return service

    def test_depths_track_batched_echo_queues(self):
        service = self.make_queued()
        depths = service.echo_queue_depths
        assert len(depths) == 2
        assert sum(depths) == 7  # every transition queued, none drained
        service.flush_echoes()
        assert service.echo_queue_depths == (0, 0)

    def test_stats_capture_depths_before_the_rollup_drain(self):
        service = self.make_queued()
        stats = service.stats()
        assert sum(stats.echo_queue_depths) == 7  # as the caller found it
        assert service.echo_queue_depths == (0, 0)  # the rollup drained

    def test_ingest_stream_queues_until_the_cadence_point(self):
        """8 accepted records under interval 100: the cadence point is
        not reached, so every placed echo is still queued afterwards —
        exactly what the ``observe`` loop would leave behind."""
        cfg = FarmerConfig(
            n_shards=2,
            max_strength=0.0,
            weight_p=0.0,
            echo_flush_interval=100,
        )
        service = ShardedFarmer(cfg)
        report = service.ingest_stream((r, True) for r in boundary_trace(8))
        assert report.n_echoes_placed == 7
        assert sum(service.echo_queue_depths) == 7

    def test_ingest_stream_flushes_on_interval_expiry(self):
        """The cadence fires mid-stream and spans batch seams: 10
        accepted records under interval 6 deliver the first 5 queued
        echoes at the 6th record, wherever the batch boundaries fall."""
        cfg = FarmerConfig(
            n_shards=2,
            max_strength=0.0,
            weight_p=0.0,
            echo_flush_interval=6,
        )
        service = ShardedFarmer(cfg)
        records = boundary_trace(10)
        service.ingest_stream((r, True) for r in records[:4])
        assert sum(service.echo_queue_depths) == 3
        service.ingest_stream((r, True) for r in records[4:])
        # one flush at the 6th accepted record delivered echoes 2..6;
        # records 7..10 each queued one since
        assert sum(service.echo_queue_depths) == 4
        assert service.n_boundary_echoes == 9
