"""Graceful degradation under overload (ISSUE 7 acceptance).

The degradation ladder must engage strictly in order: cross-shard
echoes are shed first, then sources are deferred, and owned observes
are lost only at the hard queue bound — zero owned-observe drops until
the shed watermark is exceeded, all of it counted in telemetry.
"""

from repro.core.config import FarmerConfig
from repro.online.pipeline import (
    Admission,
    AdmissionPolicy,
    OnlineService,
)
from tests.conftest import sequence_records


def overload(online, n):
    """Offer n records into a service whose consumer is NOT running —
    pure queue pressure, every admission decision observable."""
    outcomes = []
    for r in sequence_records([2, 3] * (n // 2)):  # every pair a boundary
        outcomes.append(online.offer(r))
    return outcomes


class TestDegradationOrder:
    def make(self, capacity=20, echo=0.5, defer=1.0):
        cfg = FarmerConfig(n_shards=2, max_strength=0.0, weight_p=0.0)
        return OnlineService(
            cfg,
            policy=AdmissionPolicy(
                capacity=capacity, echo_watermark=echo, defer_watermark=defer
            ),
            batch_size=capacity,
        )

    def test_zero_owned_drops_until_hard_bound(self):
        """With defer folded into the bound (defer=1.0): every record
        below capacity is *admitted* — echo-degraded maybe, but mined.
        Shedding starts at exactly the capacity-th record."""
        online = self.make(capacity=20)
        outcomes = overload(online, 30)
        assert outcomes[:10] == [Admission.ACCEPTED] * 10
        assert outcomes[10:20] == [Admission.ACCEPTED_ECHO_SHED] * 10
        assert outcomes[20:] == [Admission.SHED] * 10
        counters = online.pipeline.counters()
        assert counters.n_accepted == 20  # zero owned drops below the bound
        assert counters.n_shed == 10

    def test_defer_engages_before_shed(self):
        """With a real defer watermark nothing is ever shed: offers
        above it bounce back to the source instead."""
        online = self.make(capacity=20, defer=0.8)
        outcomes = overload(online, 30)
        assert Admission.SHED not in outcomes
        assert outcomes[16:] == [Admission.DEFERRED] * 14
        assert online.pipeline.counters().n_shed == 0

    def test_shed_echoes_never_shed_observes(self):
        """Drain the degraded queue: every admitted record mined (the
        owner shard observed it); only cross-shard echoes were lost,
        and exactly the flagged ones."""
        online = self.make(capacity=20)
        overload(online, 30)
        online.drain()
        counters = online.pipeline.counters()
        # every admitted record was mined — owned observes survived
        assert online.service.n_observed == counters.n_accepted == 20
        # the 10 echo-degraded admissions shed their boundary echoes
        # (minus none: with the [2,3] alternation every record after the
        # first is a boundary request)
        assert online.service.n_echoes_shed == 10
        # and the unflagged ones were delivered
        assert online.service.n_boundary_echoes == 19

    def test_shedding_is_counted_in_telemetry(self):
        online = self.make(capacity=20)
        overload(online, 30)
        online.drain()
        t = online.telemetry
        assert t.counter("admission.accepted") == 10
        assert t.counter("admission.accepted_echo_shed") == 10
        assert t.counter("admission.shed") == 10
        assert t.counter("ingest.echoes_shed") == 10

    def test_recovery_after_pressure_passes(self):
        """Once the queue drains, admission returns to full service —
        watermarks read live depth, not history."""
        online = self.make(capacity=20)
        overload(online, 30)
        online.drain()
        assert online.offer(sequence_records([2])[0]) is Admission.ACCEPTED
