"""The bounded queue: watermark admission exactness and consumption."""

import pytest

from repro.core.config import FarmerConfig
from repro.errors import ConfigError
from repro.online.pipeline import (
    Admission,
    AdmissionPolicy,
    IngestPipeline,
    OnlineService,
)
from repro.online.telemetry import Telemetry
from tests.conftest import make_record, sequence_records


class TestAdmissionPolicy:
    def test_watermark_depths(self):
        policy = AdmissionPolicy(
            capacity=100, echo_watermark=0.5, defer_watermark=0.9
        )
        assert policy.echo_depth == 50
        assert policy.defer_depth == 90

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"capacity": 0},
            {"echo_watermark": 0.0},
            {"echo_watermark": 0.8, "defer_watermark": 0.5},
            {"defer_watermark": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            AdmissionPolicy(**kwargs)


class TestAdmissionLadder:
    def make(self, capacity=10, echo=0.5, defer=0.9, batch=100):
        return IngestPipeline(
            AdmissionPolicy(
                capacity=capacity, echo_watermark=echo, defer_watermark=defer
            ),
            batch_size=batch,
        )

    def test_ladder_engages_in_exact_order(self):
        """capacity 10, echo mark 5, defer mark 9: the first 5 offers
        mine fully, the next 4 are admitted echo-shed, and everything
        after defers — no record is ever silently lost below the bound."""
        pipe = self.make()
        results = [pipe.offer(make_record(i)) for i in range(12)]
        assert results[:5] == [Admission.ACCEPTED] * 5
        assert results[5:9] == [Admission.ACCEPTED_ECHO_SHED] * 4
        assert results[9:] == [Admission.DEFERRED] * 3
        assert pipe.depth == 9  # deferred offers are NOT enqueued

    def test_shed_only_at_the_hard_bound(self):
        """With the defer watermark at 1.0 the defer rung vanishes and
        the hard bound sheds — and *only* the hard bound: every record
        below capacity was admitted."""
        pipe = self.make(capacity=6, echo=0.5, defer=1.0)
        results = [pipe.offer(make_record(i)) for i in range(8)]
        assert results[:3] == [Admission.ACCEPTED] * 3
        assert results[3:6] == [Admission.ACCEPTED_ECHO_SHED] * 3
        assert results[6:] == [Admission.SHED] * 2
        counters = pipe.counters()
        assert counters.n_accepted == 6
        assert counters.n_shed == 2

    def test_allow_echo_flag_rides_the_queue(self):
        pipe = self.make(capacity=4, echo=0.5, defer=1.0)
        for i in range(4):
            pipe.offer(make_record(i))
        batch = pipe.pop_batch()
        assert [allow for _, allow in batch] == [True, True, False, False]

    def test_draining_reopens_admission(self):
        pipe = self.make(capacity=4, echo=1.0, defer=1.0)
        for i in range(4):
            pipe.offer(make_record(i))
        assert pipe.offer(make_record(99)) is Admission.SHED
        pipe.pop_batch()
        assert pipe.offer(make_record(100)) is Admission.ACCEPTED

    def test_counters_account_for_everything(self):
        pipe = self.make()
        for i in range(12):
            pipe.offer(make_record(i))
        counters = pipe.counters()
        assert counters.n_offered == 12
        assert counters.n_accepted == 9
        assert counters.n_echo_degraded == 4
        assert counters.n_deferred == 3
        assert counters.n_shed == 0

    def test_admission_telemetry_counters(self):
        telemetry = Telemetry()
        pipe = IngestPipeline(
            AdmissionPolicy(capacity=4, echo_watermark=0.5, defer_watermark=1.0),
            telemetry=telemetry,
        )
        for i in range(5):
            pipe.offer(make_record(i))
        assert telemetry.counter("admission.accepted") == 2
        assert telemetry.counter("admission.accepted_echo_shed") == 2
        assert telemetry.counter("admission.shed") == 1


class TestPopBatch:
    def test_respects_batch_size(self):
        pipe = IngestPipeline(AdmissionPolicy(capacity=100), batch_size=3)
        for i in range(7):
            pipe.offer(make_record(i))
        assert len(pipe.pop_batch()) == 3
        assert len(pipe.pop_batch()) == 3
        assert len(pipe.pop_batch()) == 1
        assert pipe.pop_batch() == []
        counters = pipe.counters()
        assert counters.n_consumed == 7
        assert counters.n_batches == 3

    def test_pop_preserves_fifo_order(self):
        pipe = IngestPipeline(AdmissionPolicy(capacity=100), batch_size=100)
        records = sequence_records(range(10))
        for r in records:
            pipe.offer(r)
        assert [r for r, _ in pipe.pop_batch()] == records

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ConfigError):
            IngestPipeline(batch_size=0)


class TestOnlineService:
    def test_offer_consume_drain_roundtrip(self):
        cfg = FarmerConfig(n_shards=2, max_strength=0.3)
        online = OnlineService(cfg, batch_size=16)
        records = sequence_records([1, 2, 3, 4, 1, 2, 3, 4, 1, 2])
        for r in records:
            assert online.offer(r) is Admission.ACCEPTED
        report = online.drain()  # consumer not started: drain does it all
        assert report.n_consumed == 10
        assert online.service.n_observed == 10
        assert online.pipeline.depth == 0

    def test_stats_rollup_fields(self):
        cfg = FarmerConfig(n_shards=2, max_strength=0.3)
        online = OnlineService(cfg)
        for r in sequence_records([5, 6, 5, 6]):
            online.offer(r)
        online.drain()
        online.predict(5)
        stats = online.stats()
        assert stats.service.n_observed == 4
        assert stats.queue_depth == 0
        assert stats.pipeline.n_accepted == 4
        assert stats.endpoint_latency["predict"].n == 1
        assert stats.uptime_s >= 0.0

    def test_consumer_thread_drains_in_background(self):
        cfg = FarmerConfig(n_shards=2, max_strength=0.3)
        with OnlineService(cfg, batch_size=8) as online:
            for r in sequence_records(list(range(50))):
                online.offer(r)
            online.drain()
            assert online.service.n_observed == 50
        assert not online.running

    def test_queue_depth_series_is_sampled(self):
        cfg = FarmerConfig(n_shards=2, max_strength=0.3)
        online = OnlineService(cfg, batch_size=4, load_sample_every=1)
        for r in sequence_records(list(range(12))):
            online.offer(r)
        online.drain()
        assert len(online.telemetry.series("queue_depth")) >= 1
        assert len(online.telemetry.series("shard_load.0")) >= 1

    def test_rejects_bad_sample_cadence(self):
        with pytest.raises(ConfigError):
            OnlineService(FarmerConfig(), load_sample_every=0)
