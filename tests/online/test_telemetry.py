"""The telemetry plane: histogram bucketing, ring eviction, snapshots."""

import json

import pytest

from repro.online.telemetry import (
    LatencyHistogram,
    RingSeries,
    Telemetry,
)


class TestLatencyHistogram:
    def test_bucket_upper_bounds(self):
        """A percentile is the upper bound of its bucket: factor-2
        geometric from 1us, so a 1.5us sample reports as <= 2us."""
        hist = LatencyHistogram()
        hist.record(1.5e-6)
        assert hist.percentile(0.5) == pytest.approx(2e-6)

    def test_sub_base_samples_land_in_bucket_zero(self):
        hist = LatencyHistogram()
        hist.record(2e-7)
        hist.record(0.0)
        assert hist.n == 2
        assert hist.percentile(0.99) == pytest.approx(1e-6)

    def test_negative_clamps_to_zero(self):
        hist = LatencyHistogram()
        hist.record(-1.0)
        assert hist.n == 1
        assert hist.percentile(0.5) == pytest.approx(1e-6)

    def test_percentiles_are_monotone(self):
        hist = LatencyHistogram()
        for i in range(1, 200):
            hist.record(i * 1e-5)
        p50, p95, p99 = (
            hist.percentile(0.50),
            hist.percentile(0.95),
            hist.percentile(0.99),
        )
        assert p50 <= p95 <= p99

    def test_percentile_bound_is_conservative(self):
        """The reported percentile never understates the true one (and
        overstates by at most 2x) — the bucket upper-bound contract."""
        samples = [i * 3.3e-6 for i in range(1, 101)]
        hist = LatencyHistogram()
        for s in samples:
            hist.record(s)
        true_p95 = sorted(samples)[94]
        reported = hist.percentile(0.95)
        assert true_p95 <= reported <= true_p95 * 2.0

    def test_summary_has_exact_max_and_n(self):
        hist = LatencyHistogram()
        for s in (1e-5, 7e-4, 3e-6):
            hist.record(s)
        summary = hist.summary()
        assert summary.n == 3
        assert summary.max_s == pytest.approx(7e-4)

    def test_empty_summary_is_zeros(self):
        summary = LatencyHistogram().summary()
        assert summary.n == 0
        assert summary.p50_s == summary.p95_s == summary.p99_s == 0.0
        assert summary.max_s == 0.0

    def test_huge_sample_is_caught_by_last_bucket(self):
        hist = LatencyHistogram()
        hist.record(1e9)  # ~31 years: beyond the bucket range
        assert hist.percentile(0.5) > 0.0

    def test_as_dict_reports_microseconds(self):
        hist = LatencyHistogram()
        hist.record(1.5e-6)
        d = hist.summary().as_dict()
        assert d["n"] == 1
        assert d["p50_us"] == pytest.approx(2.0)
        assert d["max_us"] == pytest.approx(1.5)


class TestRingSeries:
    def test_append_and_iterate_in_order(self):
        series = RingSeries(capacity=8)
        for i in range(5):
            series.append(i, float(i * 10))
        assert list(series) == [(i, float(i * 10)) for i in range(5)]
        assert len(series) == 5

    def test_eviction_keeps_the_newest(self):
        series = RingSeries(capacity=3)
        for i in range(10):
            series.append(i, float(i))
        assert len(series) == 3
        assert series.values() == [7.0, 8.0, 9.0]
        assert series.last() == (9, 9.0)

    def test_max_over_retained_window_only(self):
        series = RingSeries(capacity=2)
        series.append(0, 100.0)  # evicted below
        series.append(1, 1.0)
        series.append(2, 2.0)
        assert series.max() == 2.0

    def test_empty(self):
        series = RingSeries(capacity=4)
        assert len(series) == 0
        assert series.last() is None
        assert series.max() == 0.0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            RingSeries(capacity=0)


class TestTelemetry:
    def test_counters(self):
        t = Telemetry()
        assert t.counter("x") == 0
        t.incr("x")
        t.incr("x", 4)
        assert t.counter("x") == 5

    def test_series_created_on_first_use(self):
        t = Telemetry(series_capacity=4)
        t.sample("depth", 1, 10.0)
        t.sample("depth", 2, 20.0)
        assert t.series("depth").values() == [10.0, 20.0]
        assert t.series("never_sampled").values() == []

    def test_endpoint_summaries(self):
        t = Telemetry()
        t.observe_latency("predict", 1e-4)
        t.observe_latency("predict", 2e-4)
        t.observe_latency("stats", 1e-3)
        summaries = t.endpoint_summaries()
        assert set(summaries) == {"predict", "stats"}
        assert summaries["predict"].n == 2

    def test_snapshot_is_json_safe_and_complete(self):
        t = Telemetry()
        t.incr("a", 2)
        t.sample("s", 7, 1.5)
        t.observe_latency("predict", 5e-5)
        snap = t.snapshot()
        json.dumps(snap)  # must serialise without a custom encoder
        assert snap["counters"] == {"a": 2}
        assert snap["series"] == {"s": [[7, 1.5]]}
        assert snap["endpoints"]["predict"]["n"] == 1
