"""Tests of the sharded mining service (`repro.service`)."""
