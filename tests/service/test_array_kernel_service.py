"""The array kernel under the full service stack, and the delta
standby-sync path it shares its flat layout with.

Three properties ride here:

* **service-level kernel equivalence** — a sharded service on the
  array kernel, driven through rebalance *and* failover, serves exactly
  what the bulk-kernel service serves (the kernel seam is below every
  migration/replication seam, so the whole schedule must agree);
* **delta sync engages** — steady-state standby barriers ship
  stats-only nodes as in-place array deltas (``n_delta_syncs``), and a
  standby built that way still promotes to a bit-identical shard;
* **slim process dispatch** — the process-backend runner ships the
  shared (config, vector store) snapshot once per batch, so per-dispatch
  payload bytes stay far below whole-shard pickling.
"""

import pickle

import pytest

np = pytest.importorskip("numpy")

from repro.core.config import FarmerConfig
from repro.service.runner import ParallelShardRunner
from repro.service.sharded import ShardedFarmer
from repro.traces.synthetic import generate_trace


def owned_fids(service: ShardedFarmer) -> set[int]:
    out: set[int] = set()
    for shard in service.shards:
        out.update(shard.constructor.graph.nodes())
    return out


def query_map(service: ShardedFarmer, fids) -> dict:
    return {
        fid: (service.correlators(fid), service.predict(fid))
        for fid in sorted(fids)
    }


class TestServiceEquivalence:
    def test_rebalance_and_failover_schedule(self):
        """Identical mine/rebalance/fail/promote schedule on both
        kernels ends in identical query state everywhere."""
        trace = generate_trace("hp", 12_000, seed=41)

        def run(kernel: str) -> ShardedFarmer:
            service = ShardedFarmer(
                FarmerConfig(
                    max_strength=0.3,
                    n_shards=4,
                    rerank_kernel=kernel,
                    replication=True,
                    standby_sync_interval=2_000,
                )
            )
            service.mine(trace[:6_000])
            service.rebalance(n_shards=6)
            service.mine(trace[6_000:10_000])
            service.sync_standbys()  # zero-lag barrier: lossless failover
            service.fail_shard(2)
            service.promote_standby(2)
            service.mine(trace[10_000:])
            return service

        array_svc = run("array")
        bulk_svc = run("bulk")
        fids = owned_fids(bulk_svc)
        assert owned_fids(array_svc) == fids
        assert query_map(array_svc, fids) == query_map(bulk_svc, fids)


class TestDeltaSync:
    def test_delta_path_engages_and_promotes_identically(self):
        trace = generate_trace("hp", 8_000, seed=43)
        cfg = FarmerConfig(
            max_strength=0.3,
            n_shards=2,
            rerank_kernel="array",
            replication=True,
            standby_sync_interval=100_000,  # explicit barriers only
        )

        def run(fail: bool) -> ShardedFarmer:
            service = ShardedFarmer(cfg)
            service.mine(trace[:6_000])
            service.sync_standbys()
            # steady state: mostly re-touches of known files, so most
            # changed nodes keep their successor membership
            service.mine(trace[6_000:6_600])
            report = service.sync_standbys()
            assert report.n_delta_syncs > 0
            assert (
                report.n_delta_syncs + report.n_full_clones
                == report.n_nodes_shipped
            )
            if fail:
                service.fail_shard(0)
                service.promote_standby(0)
            return service

        promoted = run(fail=True)
        reference = run(fail=False)
        fids = owned_fids(reference)
        assert owned_fids(promoted) == fids
        # the promoted shard 0 was rebuilt from clones *and* in-place
        # array deltas at a zero-lag barrier: every query must match the
        # never-failed service bit for bit
        assert query_map(promoted, fids) == query_map(reference, fids)


class TestProcessDispatch:
    def test_payloads_slim_vs_whole_shard_pickles(self):
        trace = generate_trace("hp", 4_000, seed=47)
        service = ShardedFarmer(FarmerConfig(max_strength=0.3, n_shards=4))
        with ParallelShardRunner(
            service, backend="process", n_workers=2
        ) as runner:
            report = runner.mine(trace)
        assert report.dispatch_bytes > 0
        assert report.shared_bytes > 0
        # the old protocol pickled each whole shard Farmer per dispatch
        # (graph + vector store + vocabulary); the slim payloads must
        # undercut that by a wide margin
        whole = sum(len(pickle.dumps(shard)) for shard in service.shards)
        assert report.dispatch_bytes < whole / 2

    def test_array_kernel_process_backend_equivalence(self):
        """Workers rank with the array kernel too (the scratch Farmer
        inherits the config); results must match sequential mining."""
        trace = generate_trace("hp", 4_000, seed=53)
        cfg = FarmerConfig(
            max_strength=0.3, n_shards=4, rerank_kernel="array"
        )
        sequential = ShardedFarmer(cfg).mine(trace)
        parallel = ShardedFarmer(cfg)
        with ParallelShardRunner(
            parallel, backend="process", n_workers=2
        ) as runner:
            runner.mine(trace)
        fids = owned_fids(sequential)
        assert owned_fids(parallel) == fids
        assert query_map(parallel, fids) == query_map(sequential, fids)
