"""ConsistentHashRouter: determinism, weights, stability, edge cases."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.config import FarmerConfig
from repro.errors import ConfigError
from repro.service.router import (
    ConsistentHashRouter,
    make_router,
    splitmix64,
)

SAMPLE = range(0, 5_000)


class TestDeterminism:
    def test_pure_function_of_config(self):
        a = ConsistentHashRouter(4, virtual_nodes=64, seed=7)
        b = ConsistentHashRouter(4, virtual_nodes=64, seed=7)
        assert [a.route(f) for f in SAMPLE] == [b.route(f) for f in SAMPLE]

    def test_seed_changes_ring(self):
        a = ConsistentHashRouter(4, seed=0)
        b = ConsistentHashRouter(4, seed=1)
        assert any(a.route(f) != b.route(f) for f in SAMPLE)

    def test_deterministic_across_processes(self):
        """Satellite: virtual-node placement must not depend on
        interpreter hash randomization — a child process with a
        different PYTHONHASHSEED routes identically."""
        fids = list(range(0, 512))
        here = [ConsistentHashRouter(4, seed=3).route(f) for f in fids]
        script = (
            "from repro.service.router import ConsistentHashRouter;"
            "r = ConsistentHashRouter(4, seed=3);"
            "print(','.join(str(r.route(f)) for f in range(0, 512)))"
        )
        src = Path(__file__).resolve().parents[2] / "src"
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(src), "PYTHONHASHSEED": "12345"},
        )
        child = [int(s) for s in out.stdout.strip().split(",")]
        assert child == here

    def test_splitmix64_reference_values(self):
        """Pin the mix so ring placement can never silently change."""
        assert splitmix64(0) == 0xE220A8397B1DCDAF
        assert splitmix64(1) == 0x910A2DEC89025CC1


class TestWeights:
    def test_weights_need_not_sum_to_one(self):
        """Satellite edge case: weights are normalized internally, so
        (2, 2) ≡ (0.5, 0.5) ≡ (1, 1)."""
        a = ConsistentHashRouter(2, seed=5, weights=(2.0, 2.0))
        b = ConsistentHashRouter(2, seed=5, weights=(0.5, 0.5))
        c = ConsistentHashRouter(2, seed=5)
        assert a.vnode_counts() == b.vnode_counts() == c.vnode_counts()
        assert [a.route(f) for f in SAMPLE] == [b.route(f) for f in SAMPLE]

    def test_heavier_shard_owns_more(self):
        router = ConsistentHashRouter(4, seed=1, weights=(3.0, 1.0, 1.0, 1.0))
        counts = [0, 0, 0, 0]
        for fid in SAMPLE:
            counts[router.route(fid)] += 1
        assert counts[0] > max(counts[1:])

    def test_zero_weight_empties_shard(self):
        router = ConsistentHashRouter(3, seed=2, weights=(1.0, 0.0, 1.0))
        assert router.vnode_counts()[1] == 0
        assert all(router.route(f) != 1 for f in SAMPLE)

    def test_invalid_weights_rejected(self):
        with pytest.raises(ConfigError):
            ConsistentHashRouter(2, weights=(1.0,))  # wrong length
        with pytest.raises(ConfigError):
            ConsistentHashRouter(2, weights=(1.0, -0.5))  # negative
        with pytest.raises(ConfigError):
            ConsistentHashRouter(2, weights=(0.0, 0.0))  # all empty


class TestStability:
    @pytest.mark.parametrize("n", [2, 4, 8])
    def test_adding_a_shard_moves_a_minority(self, n):
        """The consistent-hashing contract: n → n+1 reassigns roughly
        1/(n+1) of the namespace, never the majority."""
        before = ConsistentHashRouter(n, seed=0)
        after = ConsistentHashRouter(n + 1, seed=0)
        moved = sum(1 for f in SAMPLE if before.route(f) != after.route(f))
        assert moved / len(SAMPLE) < 0.5
        assert moved > 0

    def test_modulo_moves_almost_everything(self):
        """The contrast that motivates the policy."""
        moved = sum(1 for f in SAMPLE if f % 4 != f % 5)
        assert moved / len(SAMPLE) > 0.7

    def test_load_spread_reasonable(self):
        router = ConsistentHashRouter(4, virtual_nodes=64, seed=0)
        counts = [0, 0, 0, 0]
        for fid in SAMPLE:
            counts[router.route(fid)] += 1
        assert min(counts) > len(SAMPLE) * 0.10


class TestConstruction:
    def test_make_router_dispatch(self):
        router = make_router("consistent_hash", 4, virtual_nodes=32, seed=9)
        assert isinstance(router, ConsistentHashRouter)
        assert router.n_shards == 4
        assert router.virtual_nodes == 32
        assert router.seed == 9

    def test_config_accepts_policy(self):
        cfg = FarmerConfig(
            n_shards=4, shard_policy="consistent_hash", router_virtual_nodes=16
        )
        assert cfg.shard_policy == "consistent_hash"
        with pytest.raises(ConfigError):
            FarmerConfig(router_virtual_nodes=0)
        with pytest.raises(ConfigError):
            FarmerConfig(echo_flush_interval=-1)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            ConsistentHashRouter(0)
        with pytest.raises(ConfigError):
            ConsistentHashRouter(2, virtual_nodes=0)

    def test_routes_in_range(self):
        router = ConsistentHashRouter(5, seed=4)
        assert all(0 <= router.route(f) < 5 for f in SAMPLE)
