"""Batched boundary echoes: queue semantics and drain schedules.

Two load-bearing properties (ISSUE 4 tentpole):

* at ``echo_flush_interval=0`` (the default) the queued delivery is
  bit-for-bit equivalent to synchronous per-request echoes — the queue
  drains before anything else can land on the destination shard, so the
  destination's window geometry is unchanged;
* at ``echo_flush_interval=K`` echoes are delivered in FIFO order at
  interval expiry, at the batch-``mine`` ingest barrier, and before any
  query routed to the destination, so queries never miss an enqueued
  echo even though delivery is deferred.
"""

import pytest

from repro.core.config import FarmerConfig
from repro.service.sharded import ShardedFarmer
from repro.traces.synthetic import generate_trace
from tests.conftest import sequence_records


class TestJustInTimeDrain:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_bit_identical_to_synchronous(self, n_shards):
        """Acceptance property: the default (interval 0) queued echoes
        reproduce the synchronous schedule bit-for-bit — every query
        point over a real trace. The synchronous reference is the same
        service flushing after every request (per-request delivery),
        driven in lockstep so both sides rank at the same points."""
        trace = generate_trace("hp", 6_000, seed=11)
        cfg = FarmerConfig(max_strength=0.3, n_shards=n_shards)
        queued = ShardedFarmer(cfg)
        sync = ShardedFarmer(cfg)
        for record in trace:
            queued.observe(record)
            sync.observe(record)
            sync.flush_echoes()  # degenerate to synchronous delivery
            assert queued.predict(record.fid) == sync.predict(record.fid)
            assert queued.correlators(record.fid) == sync.correlators(record.fid)
        assert queued.snapshot() == sync.snapshot()
        assert queued.n_boundary_echoes == sync.n_boundary_echoes

    def test_queue_drains_before_next_owned_observe(self):
        """After a boundary request the echo sits queued until the
        destination shard's next owned observation (or query)."""
        cfg = FarmerConfig(max_strength=0.0, n_shards=2, weight_p=0.0)
        service = ShardedFarmer(cfg)
        r_even, r_odd = sequence_records([2, 3])
        service.observe(r_even)  # shard 0
        service.observe(r_odd)  # shard 1; echo for shard 0 queued
        assert service.n_pending_echoes == 1
        service.observe(sequence_records([4])[0])  # shard 0 drains first
        # shard 0's queue drained before its owned observe; the new
        # boundary request 4 queued its own echo for shard 1
        assert len(service._echo_queues[0]) == 0
        assert len(service._echo_queues[1]) == 1
        assert 3 in [e.fid for e in service.correlators(2)]

    def test_query_drains_owner_queue(self):
        cfg = FarmerConfig(max_strength=0.0, n_shards=2, weight_p=0.0)
        service = ShardedFarmer(cfg)
        for r in sequence_records([2, 3]):
            service.observe(r)
        assert service.n_pending_echoes == 1
        # querying fid 2 routes to shard 0 and must deliver the echo
        assert 3 in [e.fid for e in service.correlators(2)]
        assert service.n_pending_echoes == 0


class TestBatchedDrain:
    def test_interval_defers_and_interval_expiry_delivers(self):
        """Echoes accumulate across requests and drain every K accepted
        records."""
        cfg = FarmerConfig(
            max_strength=0.0, n_shards=2, weight_p=0.0, echo_flush_interval=6
        )
        service = ShardedFarmer(cfg)
        records = sequence_records([2, 3, 2, 3, 2])  # 4 boundary echoes
        for r in records:
            service.observe(r)
        assert service.n_pending_echoes == 4  # nothing drained yet
        service.observe(sequence_records([4])[0])  # 6th accepted record
        assert service.n_pending_echoes == 0
        assert service.n_boundary_echoes == 4

    def test_fifo_drain_order(self):
        """A drained queue replays its echoes in enqueue order: the
        destination graph sees them as consecutive stream events."""
        cfg = FarmerConfig(
            max_strength=0.0, n_shards=2, weight_p=0.0, echo_flush_interval=100
        )
        service = ShardedFarmer(cfg)
        # odd fids own shard 1; each even fid is a boundary echo to it
        # (and each return to fid 1 echoes back to shard 0)
        for r in sequence_records([1, 2, 1, 4, 1, 6]):
            service.observe(r)
        assert len(service._echo_queues[1]) == 3  # 2, 4, 6 in order
        service.flush_echoes()
        window = service.shards[1].constructor.graph.window_contents()
        # the echoes 2, 4, 6 drained FIFO after shard 1's owned 1s
        assert window[-3:] == (2, 4, 6)

    def test_explicit_flush_and_counters(self):
        cfg = FarmerConfig(
            max_strength=0.0, n_shards=2, weight_p=0.0, echo_flush_interval=100
        )
        service = ShardedFarmer(cfg)
        for r in sequence_records([2, 3] * 5):
            service.observe(r)
        queued = service.n_pending_echoes
        assert queued > 0
        before = service.n_echo_flushes
        service.flush_echoes()
        assert service.n_pending_echoes == 0
        assert service.n_echo_flushes > before
        assert service.correlation_degree(2, 3) > 0.0

    def test_mine_barrier_drains_under_chunked_schedule(self):
        """Chunked batch mining drains at every ingest barrier: queues
        are empty after each ``mine`` call and queries reflect all
        echoes, in enqueue order per destination."""
        trace = generate_trace("hp", 3_000, seed=9)
        cfg = FarmerConfig(
            max_strength=0.3, n_shards=4, echo_flush_interval=500
        )
        chunked = ShardedFarmer(cfg)
        for start in range(0, len(trace), 700):  # uneven chunk boundary
            chunked.mine(trace[start : start + 700])
            assert chunked.n_pending_echoes == 0
        whole = ShardedFarmer(cfg).mine(trace)
        assert chunked.n_observed == whole.n_observed == len(trace)
        assert chunked.n_boundary_echoes == whole.n_boundary_echoes

    def test_batched_capture_matches_sync_on_quiet_stream(self):
        """When nothing lands on the destination shard between enqueue
        and drain, the batched edge is identical to the synchronous one
        (the drain-time window equals the request-time window)."""
        sync_cfg = FarmerConfig(max_strength=0.0, n_shards=2, weight_p=0.0)
        batched_cfg = sync_cfg.with_(echo_flush_interval=50)
        # 2 owns shard 0; 3, 5, 7 all own shard 1, so after the single
        # boundary echo (3 → shard 0) nothing else touches shard 0
        records = sequence_records([2, 3, 5, 7])
        sync = ShardedFarmer(sync_cfg)
        batched = ShardedFarmer(batched_cfg)
        for r in records:
            sync.observe(r)
            batched.observe(r)
        batched.flush_echoes()
        assert batched.correlators(2) == sync.correlators(2)
        assert batched.correlators(2)  # the echoed edge 2→3 exists

    def test_batched_capture_diverges_when_destination_advances(self):
        """The documented trade: an echo drained after the destination
        observed more owned records attaches at drain-time geometry, so
        the edge weight differs from the synchronous schedule's."""
        sync_cfg = FarmerConfig(max_strength=0.0, n_shards=2, weight_p=0.0)
        batched_cfg = sync_cfg.with_(echo_flush_interval=50)
        records = sequence_records([2, 3] * 8)
        sync = ShardedFarmer(sync_cfg)
        batched = ShardedFarmer(batched_cfg)
        for r in records:
            sync.observe(r)
            batched.observe(r)
        batched.flush_echoes()
        # the boundary correlation is still captured...
        assert 3 in [e.fid for e in batched.correlators(2)]
        # ...but at a different (drain-time) LDA geometry
        assert batched.correlation_degree(2, 3) != sync.correlation_degree(2, 3)


class TestIdleDrain:
    """``echo_idle_drain``: the live trigger for idle destinations."""

    def test_idle_gap_drains_queue_without_destination_activity(self):
        """An idle shard's queue is delivered after the configured gap
        of accepted requests elsewhere — it no longer waits for the
        destination's own next request, query, or interval expiry."""
        cfg = FarmerConfig(
            max_strength=0.0,
            n_shards=2,
            weight_p=0.0,
            echo_flush_interval=10_000,  # interval alone would never fire
            echo_idle_drain=3,
        )
        service = ShardedFarmer(cfg)
        for r in sequence_records([2, 3]):
            service.observe(r)  # echo for idle shard 0 queued
        assert service.n_pending_echoes == 1
        # shard 1 keeps absorbing its own records; shard 0 stays idle
        for r in sequence_records([5, 7, 9]):
            service.observe(r)
        assert service.n_pending_echoes == 0
        assert service.n_idle_drains == 1
        assert service.correlation_degree(2, 3) > 0.0
        assert service.stats().n_idle_drains == 1

    def test_destination_activity_resets_the_gap(self):
        """Owned observations on the destination reset its idle clock
        (they drain just-in-time anyway under interval 0, so the idle
        trigger never fires for an active shard)."""
        cfg = FarmerConfig(
            max_strength=0.0, n_shards=2, weight_p=0.0, echo_idle_drain=4
        )
        service = ShardedFarmer(cfg)
        # strict alternation: every shard is active every other request
        for r in sequence_records([2, 3] * 10):
            service.observe(r)
        assert service.n_idle_drains == 0

    def test_idle_drain_is_bit_identical_at_interval_zero(self):
        """Under just-in-time mode an idle drain only moves delivery
        *earlier* onto a shard nothing else touched, so results stay
        bit-identical to the synchronous schedule — the JIT lockstep
        property holds with the trigger armed."""
        trace = generate_trace("hp", 4_000, seed=11)
        queued = ShardedFarmer(
            FarmerConfig(max_strength=0.3, n_shards=4, echo_idle_drain=5)
        )
        sync = ShardedFarmer(FarmerConfig(max_strength=0.3, n_shards=4))
        for record in trace:
            queued.observe(record)
            sync.observe(record)
            sync.flush_echoes()
            assert queued.predict(record.fid) == sync.predict(record.fid)
            assert queued.correlators(record.fid) == sync.correlators(record.fid)
        assert queued.snapshot() == sync.snapshot()

    def test_idle_drain_under_interval_mode_bounds_staleness(self):
        """Batched mode with the trigger: a queue never sits longer
        than the idle gap once its destination goes quiet."""
        cfg = FarmerConfig(
            max_strength=0.0,
            n_shards=2,
            weight_p=0.0,
            echo_flush_interval=1_000,
            echo_idle_drain=2,
        )
        service = ShardedFarmer(cfg)
        for r in sequence_records([2, 3, 5]):
            service.observe(r)
        # 3's echo to shard 0 enqueued at request 2; requests 2 and 3
        # (fids 3, 5) both landed elsewhere -> gap reached, drained
        assert service.n_pending_echoes == 0
        assert service.n_idle_drains == 1


class TestStatsSurface:
    def test_stats_reports_echo_counters(self):
        cfg = FarmerConfig(n_shards=4, echo_flush_interval=64)
        service = ShardedFarmer(cfg)
        service.mine(generate_trace("hp", 1_000, seed=2))
        stats = service.stats()
        assert stats.n_echo_flushes == service.n_echo_flushes
        assert stats.n_boundary_echoes == service.n_boundary_echoes
        assert service.n_pending_echoes == 0  # stats() flushes first
