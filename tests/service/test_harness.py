"""The replay harness and the `service` CLI subcommand."""

from repro.cli import main
from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.service.harness import (
    ServiceComparison,
    compare_single_vs_sharded,
    replay_sharded,
    replay_single,
)
from repro.service.sharded import ShardedFarmer
from repro.traces.synthetic import generate_trace


class TestReplay:
    def test_replay_single_returns_elapsed(self, hp_trace):
        elapsed = replay_single(Farmer(), hp_trace[:300])
        assert elapsed > 0.0

    def test_replay_sharded_covers_all_records(self, hp_trace):
        service = ShardedFarmer(FarmerConfig(n_shards=4))
        timings = replay_sharded(service, hp_trace[:600])
        assert len(timings) == 4
        assert sum(t.n_records for t in timings) >= 600  # echoes add to it
        assert all(t.elapsed_s >= 0.0 for t in timings)
        # service-level accounting stays consistent after a replay
        assert service.n_observed == 600
        assert service.n_boundary_echoes == (
            sum(t.n_records for t in timings) - 600
        )
        # the replay actually mined: every shard that got records has state
        for timing, shard in zip(timings, service.shards):
            if timing.n_records:
                assert shard.stats().n_observed == timing.n_records

    def test_replay_matches_observe_schedule(self, hp_trace):
        """Per-shard replay yields the same mining state as the live
        ``observe`` schedule under strict isolation (the documented
        bit-for-bit case). Both sides run observe-only so every list is
        ranked against the same final state at comparison time (the
        per-request FPA predict freezes lists at request time — the
        lazy contract's usual freshness scope)."""
        records = hp_trace[:800]
        cfg = FarmerConfig(n_shards=3, cross_shard_edges=False, max_strength=0.3)
        replayed = ShardedFarmer(cfg)
        replay_sharded(replayed, records, predict=False)
        live = ShardedFarmer(cfg)
        for record in records:
            live.observe(record)
        for record in records:
            assert replayed.correlators(record.fid) == live.correlators(record.fid)

    def test_comparison_metrics(self):
        records = generate_trace("hp", 800, seed=1)
        cmp_ = compare_single_vs_sharded(records, FarmerConfig(n_shards=2))
        assert isinstance(cmp_, ServiceComparison)
        assert cmp_.n_records == 800
        assert cmp_.n_shards == 2
        assert cmp_.critical_path_s > 0
        assert cmp_.aggregate_throughput > 0
        assert cmp_.speedup > 0
        assert cmp_.memory_bytes > 0
        assert 0.0 <= cmp_.cache_hit_rate <= 1.0

    def test_comparison_reuses_baseline(self):
        records = generate_trace("hp", 400, seed=1)
        cmp_ = compare_single_vs_sharded(
            records, FarmerConfig(n_shards=2), single_elapsed_s=1.0
        )
        assert cmp_.single_elapsed_s == 1.0
        assert cmp_.single_throughput == 400.0


class TestServiceCli:
    def test_service_subcommand(self, capsys):
        assert (
            main(
                [
                    "service",
                    "--events",
                    "600",
                    "--shards",
                    "1,2",
                    "--freeze",
                    "8",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "shards" in out
        assert "baseline" in out
        assert "speedup" in out

    def test_service_subcommand_isolated_observe_only(self, capsys):
        assert (
            main(
                [
                    "service",
                    "--events",
                    "400",
                    "--shards",
                    "2",
                    "--isolate",
                    "--per-shard-cache",
                    "--no-predict",
                    "--policy",
                    "range",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "cross_shard_edges=False" in out
        assert "mode=observe" in out
