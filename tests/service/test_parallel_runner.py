"""The executed-parallel shard runtime (`service/runner.py`).

Acceptance property: for both backends, the runner's mined Correlator
Lists are identical to the sequential ``ShardedFarmer.mine`` over the
same records — entry for entry, degree for degree — and the stream
accounting (accepted records, boundary echoes, boundary seed) matches.
"""

import pytest

from repro.core.config import FarmerConfig
from repro.errors import ConfigError
from repro.service.runner import ParallelShardRunner
from repro.service.sharded import ShardedFarmer
from repro.traces.synthetic import generate_trace


def owned_lists(service: ShardedFarmer) -> dict[int, list[tuple[int, float]]]:
    """Every owned, re-ranked, non-empty Correlator List of a service."""
    out: dict[int, list[tuple[int, float]]] = {}
    for index, shard in enumerate(service.shards):
        service.flush_shard(index)
        for fid, lst in shard.miner.lists().items():
            if len(lst) and service.shard_of(fid) == index:
                out[fid] = [(e.fid, e.degree) for e in lst.entries()]
    return out


@pytest.fixture(scope="module")
def trace():
    return generate_trace("hp", 8_000, seed=17)


class TestEquivalence:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_mined_lists_match_sequential(self, trace, backend):
        cfg = FarmerConfig(n_shards=4)
        expected = owned_lists(ShardedFarmer(cfg).mine(trace))
        service = ShardedFarmer(cfg)
        with ParallelShardRunner(service, n_workers=2, backend=backend) as runner:
            report = runner.mine(trace)
        assert owned_lists(service) == expected
        assert report.n_records == len(trace)
        assert service.n_observed == len(trace)
        assert report.backend == backend
        assert report.elapsed_s > 0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_chunked_stream_matches_sequential(self, trace, backend):
        """Reusing one runner across batches carries the boundary seed
        exactly like sequential chunked mining."""
        cfg = FarmerConfig(n_shards=3)
        sequential = ShardedFarmer(cfg)
        chunks = [trace[i : i + 1000] for i in range(0, 4000, 1000)]
        for chunk in chunks:
            sequential.mine(chunk)
        service = ShardedFarmer(cfg)
        with ParallelShardRunner(service, n_workers=2, backend=backend) as runner:
            for chunk in chunks:
                runner.mine(chunk)
        assert owned_lists(service) == owned_lists(sequential)
        assert service.n_boundary_echoes == sequential.n_boundary_echoes

    def test_strict_isolation_thread(self, trace):
        cfg = FarmerConfig(n_shards=4, cross_shard_edges=False)
        expected = owned_lists(ShardedFarmer(cfg).mine(trace))
        service = ShardedFarmer(cfg)
        with ParallelShardRunner(service, n_workers=4) as runner:
            report = runner.mine(trace)
        assert owned_lists(service) == expected
        assert report.n_boundary_echoes == 0

    def test_private_caches_thread(self, trace):
        """shared_sim_cache=False: each shard flushes against its own
        cache; results still match the sequential service."""
        cfg = FarmerConfig(n_shards=2, shared_sim_cache=False)
        expected = owned_lists(ShardedFarmer(cfg).mine(trace[:3000]))
        service = ShardedFarmer(cfg)
        with ParallelShardRunner(service, n_workers=2) as runner:
            runner.mine(trace[:3000])
        assert owned_lists(service) == expected


class TestRunnerContract:
    def test_rejects_unknown_backend(self):
        with pytest.raises(ConfigError):
            ParallelShardRunner(ShardedFarmer(), backend="fiber")

    def test_rejects_eager_schedule(self):
        service = ShardedFarmer(FarmerConfig(lazy_reevaluation=False))
        with pytest.raises(ConfigError):
            ParallelShardRunner(service)

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ConfigError):
            ParallelShardRunner(ShardedFarmer(), n_workers=0)

    def test_default_workers_bounded_by_shards(self):
        runner = ParallelShardRunner(ShardedFarmer(FarmerConfig(n_shards=2)))
        assert 1 <= runner.n_workers <= 2

    def test_close_is_idempotent(self, trace):
        runner = ParallelShardRunner(ShardedFarmer(FarmerConfig(n_shards=2)))
        runner.mine(trace[:500])
        runner.close()
        runner.close()

    def test_report_phases_sum_to_elapsed(self, trace):
        service = ShardedFarmer(FarmerConfig(n_shards=2))
        with ParallelShardRunner(service, n_workers=2) as runner:
            report = runner.mine(trace[:1000])
        assert report.elapsed_s == pytest.approx(
            report.partition_s + report.ingest_s + report.flush_s
        )
        assert report.throughput > 0


class TestSharedStoreSafety:
    def test_shared_stores_are_picklable(self):
        """The process backend ships shard snapshots: the lock-bearing
        shared stores must round-trip through pickle."""
        import pickle

        service = ShardedFarmer(FarmerConfig(n_shards=2))
        service.mine(generate_trace("hp", 400, seed=3))
        for shard in service.shards:
            clone = pickle.loads(pickle.dumps(shard))
            fids = set(shard.constructor.graph.nodes())
            for fid in fids:
                assert clone.correlators(fid) == shard.correlators(fid)

    def test_concurrent_interning_is_consistent(self):
        """Hammer one ThreadSafeVocabulary from many threads: every
        thread must observe the same token → id mapping."""
        from concurrent.futures import ThreadPoolExecutor

        from repro.vsm.vocabulary import ThreadSafeVocabulary

        vocab = ThreadSafeVocabulary()
        tokens = [("user", i % 50) for i in range(2000)]

        def intern_all(_):
            return [vocab.scalar_token(a, v) for a, v in tokens]

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(intern_all, range(8)))
        assert all(r == results[0] for r in results)
        assert len(vocab) == 50
