"""``ShardedFarmer.rebalance``: migration semantics and equivalences.

Two load-bearing properties (ISSUE 4 acceptance):

* **query preservation** — for any window and any trace, a rebalance
  serves exactly the lists the old owners would have served (migration
  ships ranked state, it never re-mines);
* **from-scratch bit-identity at window=1** — with ``window=1`` the
  boundary-echo mechanism captures the cross-shard edge set exactly
  (every adjacent pair lands on the predecessor's owner shard before
  anything else can), so each owner node's successor multiset equals
  the global adjacent multiset *independent of topology*. A
  mined-then-rebalanced service is therefore bit-for-bit identical to a
  service freshly mined at the new topology, over a 20k-record trace,
  for policy changes (hash → consistent_hash) and shard-count changes
  (grow and shrink). Wider windows make echoed deep-window edges
  topology-dependent, which is why the scope is stated this way (see
  docs/equivalence.md).
"""

import pytest

from repro.core.config import FarmerConfig
from repro.errors import ConfigError
from repro.service.router import ConsistentHashRouter, HashShardRouter
from repro.service.sharded import ShardedFarmer
from repro.traces.synthetic import generate_trace
from tests.conftest import sequence_records


def owned_fids(service: ShardedFarmer) -> set[int]:
    """Every fid with graph state, deduplicated across shards."""
    out: set[int] = set()
    for shard in service.shards:
        out.update(shard.constructor.graph.nodes())
    return out


def query_map(service: ShardedFarmer, fids) -> dict:
    """correlators + predict for every fid (forces dirty re-ranks)."""
    return {
        fid: (service.correlators(fid), service.predict(fid))
        for fid in sorted(fids)
    }


class TestQueryPreservation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(policy="consistent_hash"),
            dict(n_shards=6),
            dict(n_shards=2),
            dict(n_shards=3, policy="consistent_hash"),
        ],
    )
    def test_queries_invariant_under_rebalance(self, kwargs):
        """Migration never changes what a query returns — any window,
        any topology change."""
        trace = generate_trace("hp", 5_000, seed=19)
        service = ShardedFarmer(FarmerConfig(max_strength=0.3, n_shards=4))
        service.mine(trace)
        fids = owned_fids(service)
        before = query_map(service, fids)
        report = service.rebalance(**kwargs)
        assert query_map(service, fids) == before
        assert report.n_shards_after == kwargs.get("n_shards", 4)
        assert 0 <= report.n_migrated <= report.n_owned

    def test_snapshot_preserved(self):
        trace = generate_trace("hp", 3_000, seed=5)
        service = ShardedFarmer(FarmerConfig(max_strength=0.3, n_shards=4))
        service.mine(trace)
        before = service.snapshot()
        service.rebalance(policy="consistent_hash")
        assert service.snapshot() == before


class TestFromScratchEquivalence:
    """window=1: rebalanced ≡ freshly mined at the new topology."""

    BASE = FarmerConfig(max_strength=0.3, window=1, n_shards=4)

    def check(self, trace, **rebalance_kwargs):
        migrated = ShardedFarmer(self.BASE)
        for record in trace:
            migrated.observe(record)
        report = migrated.rebalance(**rebalance_kwargs)
        scratch = ShardedFarmer(migrated.config)
        for record in trace:
            scratch.observe(record)
        fids = owned_fids(scratch) | owned_fids(migrated)
        assert query_map(migrated, fids) == query_map(scratch, fids)
        assert migrated.snapshot() == scratch.snapshot()
        return report

    def test_hash_to_consistent_hash_20k(self, hp_trace_20k):
        """Acceptance: policy migration over a 20k-record trace."""
        report = self.check(hp_trace_20k, policy="consistent_hash")
        assert report.n_migrated > 0
        assert report.policy == "consistent_hash"

    def test_shard_count_grow_20k(self, synthetic_trace):
        """Acceptance: shard-count change (4 → 6) over 20k records."""
        trace = synthetic_trace("hp", 20_000, seed=14)
        report = self.check(trace, n_shards=6)
        assert report.n_shards_after == 6

    def test_shard_count_shrink(self):
        trace = generate_trace("hp", 8_000, seed=15)
        report = self.check(trace, n_shards=2)
        assert report.n_shards_after == 2
        # everything shards 2..3 owned had to move
        assert report.n_migrated > 0

    def test_consistent_hash_growth_moves_minority(self):
        """Same property through the service: consistent_hash 4 → 5
        migrates a minority while modulo would reshuffle the bulk."""
        trace = generate_trace("hp", 8_000, seed=16)
        service = ShardedFarmer(
            self.BASE.with_(shard_policy="consistent_hash")
        )
        for record in trace:
            service.observe(record)
        report = service.rebalance(n_shards=5)
        assert 0 < report.moved_fraction < 0.5

    def test_mining_continues_after_rebalance(self):
        """Post-rebalance observations route with the new topology and
        keep capturing cross-shard edges."""
        trace = generate_trace("hp", 6_000, seed=17)
        service = ShardedFarmer(self.BASE)
        for record in trace[:3_000]:
            service.observe(record)
        service.rebalance(n_shards=6, policy="consistent_hash")
        echoes_before = service.n_boundary_echoes
        for record in trace[3_000:]:
            service.observe(record)
            service.predict(record.fid)
        assert service.n_observed == len(trace)
        assert service.n_boundary_echoes > echoes_before
        stats = service.stats()
        assert stats.n_shards == 6
        assert stats.n_rebalances == 1
        assert stats.n_migrated_fids > 0


class TestRebalanceEdgeCases:
    def test_empty_shard_after_zero_weight_rebalance(self):
        """Satellite edge case: a zero weight drains a shard entirely;
        the empty shard keeps serving (nothing routes to it)."""
        trace = generate_trace("hp", 3_000, seed=7)
        service = ShardedFarmer(
            FarmerConfig(
                max_strength=0.3, n_shards=3, shard_policy="consistent_hash"
            )
        )
        service.mine(trace)
        fids = owned_fids(service)
        before = query_map(service, fids)
        service.rebalance(weights=(1.0, 0.0, 1.0))
        assert query_map(service, fids) == before
        assert all(service.shard_of(fid) != 1 for fid in fids)
        # shard 1 still exists, owns nothing, and stats() handles it
        assert service.stats().n_shards == 3
        service.mine(trace[:500])  # and mining still works

    def test_weights_carry_forward(self):
        """A later rebalance that omits weights keeps the current ring's
        weights — a drained (zero-weight) shard stays drained."""
        service = ShardedFarmer(
            FarmerConfig(n_shards=3, shard_policy="consistent_hash")
        )
        service.mine(generate_trace("hp", 1_000, seed=6))
        service.rebalance(weights=(1.0, 1.0, 0.0))
        service.rebalance()  # no weights given: keep them
        assert service.router.weights == (1.0, 1.0, 0.0)
        fids = owned_fids(service)
        assert all(service.shard_of(fid) != 2 for fid in fids)

    def test_weighted_ring_count_change_needs_explicit_weights(self):
        """Changing the shard count while the ring has explicit weights
        must not silently reset to uniform."""
        service = ShardedFarmer(
            FarmerConfig(n_shards=3, shard_policy="consistent_hash")
        )
        service.rebalance(weights=(1.0, 1.0, 0.0))
        with pytest.raises(ConfigError):
            service.rebalance(n_shards=4)
        service.rebalance(n_shards=4, weights=(1.0, 1.0, 0.0, 1.0))
        assert service.config.n_shards == 4

    def test_weights_require_consistent_hash(self):
        service = ShardedFarmer(FarmerConfig(n_shards=2))
        with pytest.raises(ConfigError):
            service.rebalance(weights=(1.0, 2.0))

    def test_explicit_router_must_match_count(self):
        service = ShardedFarmer(FarmerConfig(n_shards=2))
        with pytest.raises(ConfigError):
            service.rebalance(n_shards=4, router=HashShardRouter(2))

    def test_explicit_router_accepted(self):
        service = ShardedFarmer(FarmerConfig(n_shards=2))
        service.mine(generate_trace("hp", 1_000, seed=3))
        router = ConsistentHashRouter(4, seed=42)
        report = service.rebalance(n_shards=4, router=router)
        assert service.router is router
        assert report.n_shards_after == 4
        assert service.config.n_shards == 4

    def test_noop_rebalance_moves_nothing(self):
        """Re-installing the same topology is a no-op migration."""
        service = ShardedFarmer(FarmerConfig(max_strength=0.3, n_shards=4))
        service.mine(generate_trace("hp", 2_000, seed=4))
        report = service.rebalance(n_shards=4)
        assert report.n_migrated == 0
        assert report.moved_fraction == 0.0


class TestBoundaryStateAfterRebalance:
    """Regression (ISSUE 5 satellite): ``rebalance`` must leave the
    service-level boundary-detection state (``_prev_fid`` /
    ``_prev_owner``) explicitly initialized, including for destination
    shards that did not exist before the rebalance — previously only
    covered implicitly by the 4 → 6 bit-identity property."""

    def test_new_shard_becomes_prev_owner_and_receives_echo(self):
        """When the last-observed fid's new owner is a shard created by
        the rebalance, the next boundary request must echo to that new
        shard — the boundary seed re-routes onto the grown topology."""
        cfg = FarmerConfig(max_strength=0.0, weight_p=0.0, n_shards=2)
        service = ShardedFarmer(cfg)
        for r in sequence_records([2, 9]):
            service.observe(r)
        assert service._prev_owner == 1  # 9 % 2
        service.rebalance(n_shards=6)
        # fid 9's owner under the new modulo topology is shard 3 — a
        # shard that did not exist before this rebalance
        assert service._prev_owner == 3
        echoes_before = service.n_boundary_echoes
        service.observe(sequence_records([4])[0])  # owner 4: boundary
        assert service.n_boundary_echoes == echoes_before + 1
        assert len(service._echo_queues[3]) == 1
        # delivery lands on the new shard (its window is empty post-
        # rebalance, so the echo creates the node without the 9 -> 4
        # edge — the documented approximate post-rebalance geometry)
        service.flush_echoes()
        assert 4 in service.shards[3].constructor.graph.nodes()

    def test_rebalance_before_any_stream_keeps_boundary_unset(self):
        """A topology change on a virgin service resets the boundary
        seed to None — the first post-rebalance request must not be
        treated as a boundary request."""
        service = ShardedFarmer(FarmerConfig(n_shards=2))
        service.rebalance(n_shards=4)
        assert service._prev_owner is None
        assert service._prev_fid is None
        service.observe(sequence_records([5])[0])
        assert service.n_boundary_echoes == 0


class TestAutoRebalance:
    """``auto_rebalance``: observed load → consistent-hash weights."""

    @staticmethod
    def skewed_service(n_shards: int = 4) -> ShardedFarmer:
        """A service with deliberately unbalanced shard load: the hash
        router sends ``fid % n`` to shard ``fid % n``, so a fid stream
        biased toward residue 0 overloads shard 0."""
        service = ShardedFarmer(FarmerConfig(max_strength=0.0, n_shards=n_shards))
        hot = [fid * n_shards for fid in range(1, 40)]  # residue 0
        cold = [fid * n_shards + 3 for fid in range(1, 6)]  # residue 3
        for r in sequence_records(hot * 6 + cold):
            service.observe(r)
            service.predict(r.fid)
        return service

    def test_weights_monotone_decreasing_in_load(self):
        service = self.skewed_service()
        report = service.auto_rebalance()
        loads, weights = report.loads, report.weights
        assert loads[0] == max(loads)  # the skew landed where intended
        for i in range(4):
            for j in range(4):
                if loads[i] < loads[j]:
                    assert weights[i] >= weights[j], (i, j)
        # strictly fewer ring points for the hot shard than the coldest
        assert weights[0] == min(weights)
        assert service.router.weights == report.weights
        assert service.config.shard_policy == "consistent_hash"

    def test_weights_clamped_to_band(self):
        report = self.skewed_service().auto_rebalance(
            weight_floor=0.5, weight_ceiling=1.5
        )
        assert all(0.5 <= w <= 1.5 for w in report.weights)

    def test_queries_invariant_under_auto_rebalance(self):
        """The PR 4 invariance harness, re-aimed: auto_rebalance is a
        rebalance, so every pre-decision query result is preserved."""
        trace = generate_trace("hp", 5_000, seed=19)
        service = ShardedFarmer(FarmerConfig(max_strength=0.3, n_shards=4))
        service.mine(trace)
        fids = owned_fids(service)
        before = query_map(service, fids)
        report = service.auto_rebalance()
        assert query_map(service, fids) == before
        assert report.rebalance.n_shards_after == 4
        assert service.stats().n_rebalances == 1

    def test_unloaded_service_stays_uniform(self):
        service = ShardedFarmer(FarmerConfig(n_shards=3))
        report = service.auto_rebalance()
        assert report.weights == (1.0, 1.0, 1.0)
        assert report.rebalance.n_migrated == 0  # nothing owned yet

    def test_repeated_auto_rebalance_converges_not_oscillates(self):
        """A second decision on unchanged cumulative load must not move
        a large namespace share back: weights are recomputed from the
        same totals, so the ring barely changes."""
        service = self.skewed_service()
        first = service.auto_rebalance()
        second = service.auto_rebalance()
        # the first decision's own migration work (ranking shipped
        # lists) nudges entries_scanned, so allow a small wobble — the
        # point is no oscillation, not bit-equal weights
        assert second.weights == pytest.approx(first.weights, rel=0.05)
        assert second.rebalance.moved_fraction <= 0.05

    def test_invalid_band_rejected(self):
        service = ShardedFarmer(FarmerConfig(n_shards=2))
        with pytest.raises(ConfigError):
            service.auto_rebalance(weight_floor=0.0)
        with pytest.raises(ConfigError):
            service.auto_rebalance(weight_floor=2.0, weight_ceiling=1.0)


class TestLoadWindowLifecycle:
    """The load-attribution window behind ``auto_rebalance``: every
    decision reads only the load observed since the *previous* decision
    (ISSUE 7 satellite). Lifetime counters would keep punishing a shard
    for skew it already shed, pinning it at the weight floor forever."""

    def test_decision_resets_the_window(self):
        service = TestAutoRebalance.skewed_service()
        assert max(service.shard_loads(since_decision=True)) > 0
        service.auto_rebalance()
        # the decision consumed the window: reads restart from zero
        assert service.shard_loads(since_decision=True) == (0.0,) * 4
        # lifetime totals are untouched by the windowing
        assert max(service.shard_loads()) > 0

    def test_immediate_second_decision_keeps_weights(self):
        """A zero-signal window installs no new opinion: the second
        decision keeps the first one's ring weights verbatim and moves
        nothing, instead of silently resetting to uniform."""
        service = TestAutoRebalance.skewed_service()
        first = service.auto_rebalance()
        second = service.auto_rebalance()
        assert second.loads == (0.0,) * 4
        assert second.weights == first.weights
        assert second.rebalance.n_migrated == 0

    def test_manual_rebalance_also_resets_the_window(self):
        """Any topology change invalidates prior load attribution, so a
        manual ``rebalance`` resets the window too: an auto decision
        right after sees no signal and keeps the (uniform) weights."""
        service = TestAutoRebalance.skewed_service()
        service.rebalance(policy="consistent_hash")
        report = service.auto_rebalance()
        assert report.loads == (0.0,) * 4
        assert report.weights == (1.0,) * 4

    def test_next_window_reflects_only_fresh_load(self):
        """Skew toward shard 0, decide, then skew the *new* topology's
        stream toward a different shard: the second decision judges by
        the fresh window only — the old hot shard is no longer the one
        whose weight is cut."""
        service = TestAutoRebalance.skewed_service()
        service.auto_rebalance()
        # find fids the new (consistent-hash) router sends to shard 2
        # and hammer them: shard 2 owns the fresh window
        route = service.router.route
        hot = [fid for fid in range(1, 400) if route(fid) == 2][:30]
        assert hot, "need fids owned by shard 2 under the new ring"
        for r in sequence_records(hot * 6):
            service.observe(r)
            service.predict(r.fid)
        report = service.auto_rebalance()
        assert report.loads[2] == max(report.loads)
        assert report.weights[2] == min(report.weights)

    def test_promotion_resets_the_promoted_shards_mark(self):
        """A promoted standby's counters restart below the failed
        primary's mark; the re-mark at promotion keeps its next window
        near zero instead of a clamp artifact swallowing real load."""
        service = ShardedFarmer(
            FarmerConfig(
                max_strength=0.0,
                n_shards=4,
                replication=True,
                standby_sync_interval=50,
            )
        )
        hot = [fid * 4 for fid in range(1, 40)]  # residue 0: shard 0
        for r in sequence_records(hot * 6):
            service.observe(r)
            service.predict(r.fid)
        before = service.shard_loads(since_decision=True)[0]
        assert before > 0
        service.fail_shard(0)
        service.promote_standby(0)
        after = service.shard_loads(since_decision=True)[0]
        # the promoted shard's window restarts at the standby's counters
        # (re-marked at promotion), not at the dead primary's lifetime
        # skew — only the promotion's own reseed work remains visible
        assert after < before
        # and the clamp never reports a negative window
        assert all(w >= 0.0 for w in service.shard_loads(since_decision=True))
