"""Fault-injection suite: shard replication, failover, degraded mode.

The load-bearing property (ISSUE 5 acceptance): for every shard index,
killing the shard at a randomized point in a 20k-record trace and
promoting its warm standby yields **bit-identical query results to a
never-failed service at the last sync barrier** — for both the hash and
consistent_hash routers. "Never-failed service" means the same
configuration (replication enabled, same sync cadence): sync barriers
rank tick-changed lists at the source, so the reference must share that
flush schedule, exactly as a surviving replica set in a real deployment
would. The suite also covers double failures, failure between chunked
``mine()`` batches (including the zero-loss case where the failure
lands on a barrier), degraded-mode semantics (healthy partitions keep
serving; traffic to the failed shard raises), echo loss accounting, and
replication's transparency to mining results.
"""

import random

import pytest

from repro.core.config import FarmerConfig
from repro.errors import ConfigError, ReplicationError, ShardFailedError
from repro.service.sharded import ShardedFarmer
from tests.conftest import cached_trace, sequence_records


def replicated_config(**overrides) -> FarmerConfig:
    base = dict(
        max_strength=0.3,
        n_shards=4,
        replication=True,
        standby_sync_interval=2000,
    )
    base.update(overrides)
    return FarmerConfig(**base)


def owned_by(service: ShardedFarmer, index: int) -> list[int]:
    """Fids with graph state on shard ``index`` that it actually owns
    (halo nodes from boundary echoes are not queryable state)."""
    route = service.router.route
    return sorted(
        fid
        for fid in service.shards[index].constructor.graph.nodes()
        if route(fid) == index
    )


def assert_partition_matches(
    promoted: ShardedFarmer, reference: ShardedFarmer, index: int
) -> None:
    """Every owned query of shard ``index`` agrees between the two."""
    fids = set(owned_by(promoted, index)) | set(owned_by(reference, index))
    assert fids, "vacuous comparison: the shard owns nothing"
    for fid in sorted(fids):
        assert promoted.correlators(fid) == reference.correlators(fid), fid
        assert promoted.predict(fid) == reference.predict(fid), fid


class TestFailoverBarrierIdentity:
    """fail → promote ≡ never-failed at the last sync barrier."""

    @pytest.mark.parametrize("policy", ["hash", "consistent_hash"])
    def test_randomized_kill_points_every_shard_20k(self, policy, hp_trace_20k):
        """Acceptance property: each of the 4 shards killed at its own
        randomized point of the 20k trace, both router policies."""
        trace = hp_trace_20k
        cfg = replicated_config(
            shard_policy=policy, standby_sync_interval=4000
        )
        rng = random.Random(0xFA11 + (0 if policy == "hash" else 1))
        for index in range(cfg.n_shards):
            kill_at = rng.randrange(4001, len(trace))
            service = ShardedFarmer(cfg)
            for record in trace[:kill_at]:
                service.observe(record)
            barrier = service.last_standby_sync
            assert barrier >= 4000  # at least one barrier passed
            service.fail_shard(index)
            report = service.promote_standby(index)
            assert report.shard == index
            assert report.synced_at == barrier
            assert report.lag == kill_at - barrier
            assert report.n_nodes_restored > 0
            reference = ShardedFarmer(cfg)
            for record in trace[:barrier]:
                reference.observe(record)
            assert_partition_matches(service, reference, index)

    def test_double_failure_two_shards(self, synthetic_trace):
        """Two shards lost before either is recovered: both promotions
        restore their partitions to the shared barrier, and the healthy
        shards never stopped serving."""
        trace = synthetic_trace("hp", 8_000, seed=31)
        cfg = replicated_config()
        service = ShardedFarmer(cfg)
        for record in trace[:6_500]:
            service.observe(record)
        barrier = service.last_standby_sync
        assert barrier == 6_000
        service.fail_shard(0)
        service.fail_shard(2)
        assert service.failed_shards == (0, 2)
        # a healthy partition keeps answering while two shards are down
        healthy = next(f for f in owned_by(service, 1))
        assert service.correlators(healthy) is not None
        for index in (0, 2):
            service.promote_standby(index)
        assert service.failed_shards == ()
        reference = ShardedFarmer(cfg)
        for record in trace[:barrier]:
            reference.observe(record)
        assert_partition_matches(service, reference, 0)
        assert_partition_matches(service, reference, 2)
        assert service.stats().n_failovers == 2

    def test_refail_before_next_barrier_restores_promotion_snapshot(
        self, synthetic_trace
    ):
        """Promotion immediately re-protects the shard: failing it again
        before any new barrier restores the state the first promotion
        served (the reseed snapshot), not an empty shard."""
        trace = synthetic_trace("hp", 8_000, seed=31)
        cfg = replicated_config()
        service = ShardedFarmer(cfg)
        for record in trace[:6_500]:
            service.observe(record)
        barrier = service.last_standby_sync
        service.fail_shard(1)
        first = service.promote_standby(1)
        assert first.synced_at == barrier
        # keep streaming, but stay short of the next interval barrier
        for record in trace[6_500:6_900]:
            service.observe(record)
        assert service.last_standby_sync == barrier
        service.fail_shard(1)
        second = service.promote_standby(1)
        # the reseed ran at the first promotion (service time 6 500),
        # capturing the promoted shard's barrier-time partition state
        assert second.synced_at == 6_500
        reference = ShardedFarmer(cfg)
        for record in trace[:barrier]:
            reference.observe(record)
        assert_partition_matches(service, reference, 1)

    def test_fail_on_mine_barrier_recovers_with_zero_loss(
        self, synthetic_trace
    ):
        """Chunked batch mining syncs at the batch barrier, so a shard
        killed right after a chunk has a zero-record loss window — the
        promoted service, fed the remaining chunks, ends bit-identical
        to a service that never failed at all."""
        trace = synthetic_trace("hp", 6_000, seed=33)
        cfg = replicated_config(standby_sync_interval=1500)
        service = ShardedFarmer(cfg)
        service.mine(trace[:3_000])
        assert service.last_standby_sync == 3_000
        service.fail_shard(2)
        with pytest.raises(ShardFailedError):
            service.mine(trace[3_000:4_000])  # degraded: batch refused
        report = service.promote_standby(2)
        assert report.lag == 0  # the failure landed on a barrier
        service.mine(trace[3_000:])
        assert service.n_observed == len(trace)
        never_failed = ShardedFarmer(cfg)
        never_failed.mine(trace[:3_000])
        never_failed.mine(trace[3_000:])
        for index in range(cfg.n_shards):
            assert_partition_matches(service, never_failed, index)

    def test_failover_after_rebalance(self, synthetic_trace):
        """A rebalance rebuilds every standby against the new topology;
        a brand-new shard is immediately protected."""
        trace = synthetic_trace("hp", 4_000, seed=35)
        cfg = replicated_config(standby_sync_interval=1000)
        service = ShardedFarmer(cfg)
        for record in trace:
            service.observe(record)
        service.rebalance(n_shards=6, policy="consistent_hash")
        # the rebalance took a fresh barrier at the new topology
        assert service.last_standby_sync == len(trace)
        index = 5  # a shard that did not exist before the rebalance
        fids = owned_by(service, index)
        assert fids, "need a populated brand-new shard for this test"
        before = {fid: service.correlators(fid) for fid in fids}
        service.fail_shard(index)
        report = service.promote_standby(index)
        assert report.lag == 0
        assert {fid: service.correlators(fid) for fid in fids} == before


class TestDegradedMode:
    """Semantics between ``fail_shard`` and ``promote_standby``."""

    def setup_service(self) -> ShardedFarmer:
        service = ShardedFarmer(replicated_config())
        for record in cached_trace("hp", 2_000, 7):
            service.observe(record)
        return service

    def test_traffic_to_failed_shard_raises_and_others_serve(self):
        service = self.setup_service()
        service.fail_shard(3)
        victim = next(
            r for r in cached_trace("hp", 2_000, 7) if r.fid % 4 == 3
        )
        with pytest.raises(ShardFailedError) as exc:
            service.observe(victim)
        assert exc.value.shard == 3
        with pytest.raises(ShardFailedError):
            service.correlators(victim.fid)
        with pytest.raises(ShardFailedError):
            service.predict(victim.fid)
        # healthy partitions are unaffected, reads and writes
        survivor = next(
            r for r in cached_trace("hp", 2_000, 7) if r.fid % 4 == 0
        )
        service.observe(survivor)
        assert service.correlators(survivor.fid) is not None

    def test_mine_and_rebalance_refused_while_degraded(self):
        service = self.setup_service()
        service.fail_shard(0)
        with pytest.raises(ShardFailedError):
            service.mine(cached_trace("hp", 2_000, 7)[:100])
        with pytest.raises(ShardFailedError):
            service.rebalance(n_shards=6)
        service.promote_standby(0)
        service.mine(cached_trace("hp", 2_000, 7)[:100])  # healthy again

    def test_echoes_to_failed_destination_are_dropped_and_counted(self):
        cfg = replicated_config(
            n_shards=4, max_strength=0.0, weight_p=0.0
        )
        service = ShardedFarmer(cfg)
        # fid 4 owns shard 0; fid 1 owns shard 1: 4 → 1 is a boundary
        # pair whose echo targets shard 0
        r4, r1 = sequence_records([4, 1])
        service.observe(r4)
        service.fail_shard(0)
        service.observe(r1)  # prev owner 0 is down: echo dropped
        assert service.n_echoes_dropped == 1
        assert service.n_pending_echoes == 0
        service.promote_standby(0)
        # the dropped echo is gone for good (at-most-once delivery)
        assert service.correlation_degree(4, 1) == 0.0

    def test_inflight_echoes_die_with_the_shard(self):
        cfg = replicated_config(
            n_shards=2, max_strength=0.0, weight_p=0.0
        )
        service = ShardedFarmer(cfg)
        for record in sequence_records([2, 3]):
            service.observe(record)  # echo for shard 0 sits queued
        assert service.n_pending_echoes == 1
        service.fail_shard(0)
        assert service.n_pending_echoes == 0
        assert service.n_echoes_dropped == 1

    def test_stats_and_snapshot_exclude_failed_partition(self):
        service = self.setup_service()
        whole = service.snapshot()
        service.fail_shard(2)
        degraded = service.snapshot()
        assert degraded.n_lists < whole.n_lists
        stats = service.stats()  # must not raise while degraded
        assert stats.n_failovers == 0
        assert stats.shards[2].n_files == 0  # the empty placeholder

    def test_misuse_raises(self):
        service = self.setup_service()
        with pytest.raises(ReplicationError):
            service.promote_standby(1)  # not failed
        service.fail_shard(1)
        with pytest.raises(ReplicationError):
            service.fail_shard(1)  # already failed
        with pytest.raises(ConfigError):
            service.fail_shard(9)  # no such shard
        unreplicated = ShardedFarmer(FarmerConfig(n_shards=2))
        with pytest.raises(ReplicationError):
            unreplicated.fail_shard(0)
        with pytest.raises(ReplicationError):
            unreplicated.sync_standbys()


class TestReplicationTransparency:
    """Standby upkeep must never change what the service serves."""

    def test_lockstep_queries_identical_with_and_without(
        self, synthetic_trace
    ):
        """The FPA pattern, replicated vs unreplicated, in lockstep:
        identical queries at every point. (Final *snapshots* are out of
        scope by design: a sync barrier ranks tick-changed lists early,
        so an untouched list freezes at barrier state where the
        unreplicated service freezes it at its last rank — the same
        freshness scope as lazy batch ``mine``. A queried-dirty list is
        a pure function of current state either way, which is what this
        lockstep pins.)"""
        trace = synthetic_trace("hp", 4_000, seed=35)
        replicated = ShardedFarmer(
            replicated_config(standby_sync_interval=500)
        )
        plain = ShardedFarmer(
            FarmerConfig(max_strength=0.3, n_shards=4)
        )
        for record in trace:
            replicated.observe(record)
            plain.observe(record)
            assert replicated.predict(record.fid) == plain.predict(record.fid)
            assert replicated.correlators(record.fid) == plain.correlators(
                record.fid
            )
        assert replicated.n_boundary_echoes == plain.n_boundary_echoes
        assert replicated.stats().n_standby_syncs == 8

    def test_sync_cadence_and_explicit_barrier(self, synthetic_trace):
        trace = synthetic_trace("hp", 2_500, seed=37)
        service = ShardedFarmer(replicated_config(standby_sync_interval=1000))
        for record in trace[:999]:
            service.observe(record)
        assert service.last_standby_sync == 0  # cadence not reached yet
        service.observe(trace[999])
        assert service.last_standby_sync == 1000
        report = service.sync_standbys()  # explicit barrier, on demand
        assert report.at_observed == 1000
        assert report.n_shards_synced == 4
        assert service.stats().n_standby_syncs == 2

    def test_standby_memory_is_accounted(self, synthetic_trace):
        trace = synthetic_trace("hp", 2_500, seed=37)
        replicated = ShardedFarmer(
            replicated_config(standby_sync_interval=1000)
        )
        plain = ShardedFarmer(FarmerConfig(max_strength=0.3, n_shards=4))
        for record in trace:
            replicated.observe(record)
            plain.observe(record)
        # the standbys are real resident state: strictly more memory
        assert replicated.memory_bytes() > plain.memory_bytes()
