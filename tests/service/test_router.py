"""Router determinism, coverage and validation."""

import pytest

from repro.errors import ConfigError
from repro.service.router import (
    HashShardRouter,
    RangeShardRouter,
    ShardRouter,
    make_router,
)


class TestHashRouter:
    def test_matches_cluster_partitioning(self):
        router = HashShardRouter(4)
        for fid in range(100):
            assert router.route(fid) == fid % 4

    def test_total_and_in_range(self):
        router = HashShardRouter(3)
        assert {router.route(fid) for fid in range(1000)} == {0, 1, 2}

    def test_deterministic(self):
        a, b = HashShardRouter(5), HashShardRouter(5)
        assert all(a.route(f) == b.route(f) for f in range(500))

    def test_single_shard(self):
        router = HashShardRouter(1)
        assert all(router.route(f) == 0 for f in range(100))

    def test_rejects_zero_shards(self):
        with pytest.raises(ConfigError):
            HashShardRouter(0)


class TestRangeRouter:
    def test_striped_blocks(self):
        router = RangeShardRouter(2, block_size=10)
        assert router.route(0) == 0
        assert router.route(9) == 0
        assert router.route(10) == 1
        assert router.route(19) == 1
        assert router.route(20) == 0  # blocks dealt round-robin

    def test_explicit_boundaries(self):
        router = RangeShardRouter(3, boundaries=(100, 200))
        assert router.route(0) == 0
        assert router.route(100) == 0
        assert router.route(101) == 1
        assert router.route(200) == 1
        assert router.route(201) == 2
        assert router.route(10**9) == 2

    def test_boundary_count_validated(self):
        with pytest.raises(ConfigError):
            RangeShardRouter(3, boundaries=(100,))

    def test_boundaries_must_be_sorted(self):
        with pytest.raises(ConfigError):
            RangeShardRouter(3, boundaries=(200, 100))

    def test_rejects_bad_block_size(self):
        with pytest.raises(ConfigError):
            RangeShardRouter(2, block_size=0)

    def test_locality(self):
        """Neighbouring fids land on the same shard within a block."""
        router = RangeShardRouter(4, block_size=64)
        for start in (0, 64, 640):
            owners = {router.route(start + i) for i in range(64)}
            assert len(owners) == 1


class TestMakeRouter:
    def test_policies(self):
        assert isinstance(make_router("hash", 4), HashShardRouter)
        assert isinstance(make_router("range", 4), RangeShardRouter)

    def test_unknown_policy(self):
        with pytest.raises(ConfigError):
            make_router("consistent", 4)

    def test_protocol_conformance(self):
        assert isinstance(make_router("hash", 2), ShardRouter)
        assert isinstance(make_router("range", 2), ShardRouter)
