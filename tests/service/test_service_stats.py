"""Aggregated service stats: rollups, dedup'd memory accounting, and the
public sim-cache stats surface (``Farmer.stats().sim_cache``)."""

import pytest

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.core.simcache import SimCacheStats
from repro.service.sharded import ShardedFarmer
from repro.service.stats import ServiceStats, combine_cache_stats
from repro.traces.synthetic import generate_trace
from tests.conftest import sequence_records


def mined_service(n_shards=4, n_events=2_000, **cfg) -> ShardedFarmer:
    service = ShardedFarmer(FarmerConfig(n_shards=n_shards, **cfg))
    for record in generate_trace("hp", n_events, seed=2):
        service.observe(record)
        service.predict(record.fid)
    return service


class TestCombineCacheStats:
    def test_empty(self):
        combined = combine_cache_stats([])
        assert combined.lookups == 0
        assert combined.hit_rate == 0.0

    def test_single_passthrough(self):
        s = SimCacheStats(hits=3, misses=1, stale=0, evictions=0, size=4, capacity=8)
        assert combine_cache_stats([s]) is s

    def test_sums_counters(self):
        a = SimCacheStats(hits=3, misses=1, stale=1, evictions=0, size=4, capacity=8)
        b = SimCacheStats(hits=1, misses=3, stale=0, evictions=2, size=2, capacity=8)
        c = combine_cache_stats([a, b])
        assert (c.hits, c.misses, c.stale, c.evictions) == (4, 4, 1, 2)
        assert (c.size, c.capacity) == (6, 16)
        assert c.hit_rate == pytest.approx(0.5)


class TestServiceStats:
    def test_rollup_fields(self):
        service = mined_service()
        stats = service.stats()
        assert isinstance(stats, ServiceStats)
        assert stats.n_shards == 4
        assert stats.n_observed == 2_000
        assert len(stats.shards) == 4
        # per-shard n_observed includes absorbed echoes
        assert sum(s.n_observed for s in stats.shards) == (
            stats.n_observed + stats.n_boundary_echoes
        )
        assert stats.n_files == sum(s.n_files for s in stats.shards)
        assert stats.n_edges == sum(s.n_edges for s in stats.shards)
        assert stats.memory_bytes == service.memory_bytes()
        assert stats.memory_megabytes == pytest.approx(stats.memory_bytes / 1e6)

    def test_shared_cache_counted_once(self):
        """Total memory must not scale the shared cache by n_shards."""
        service = mined_service()
        cache_bytes = service.sim_cache.approx_bytes()
        shard_bytes = sum(s.memory_bytes() for s in service.shards)
        expected = (
            service.vocabulary.approx_bytes()
            + service.vector_store.approx_bytes()
            + cache_bytes
            + shard_bytes
        )
        assert service.memory_bytes() == expected
        # and no shard accounts the injected components itself
        for shard in service.shards:
            assert not shard.owns_vocabulary
            assert not shard.constructor.owns_vectors
            assert not shard.miner.owns_sim_cache

    def test_per_shard_cache_stats_summed(self):
        service = mined_service(shared_sim_cache=False)
        stats = service.stats()
        per_shard = [s.sim_cache_stats() for s in service.shards]
        assert stats.sim_cache.lookups == sum(s.lookups for s in per_shard)
        assert stats.sim_cache.hits == sum(s.hits for s in per_shard)

    def test_shared_cache_stats_are_service_wide(self):
        service = mined_service()
        assert service.stats().sim_cache == service.sim_cache.stats()


class TestEchoAccountingFields:
    """Per-destination echo-queue visibility through ``ServiceStats``
    (ISSUE 7 satellite): queue depths as the caller found them, drop
    counts by destination, and the online path's shed counter."""

    def boundary_service(self, **cfg) -> ShardedFarmer:
        base = dict(n_shards=2, max_strength=0.0, weight_p=0.0)
        base.update(cfg)
        service = ShardedFarmer(FarmerConfig(**base))
        for r in sequence_records([2, 3] * 4):
            service.observe(r)
        return service

    def test_depths_snapshot_precedes_the_rollup_drain(self):
        service = self.boundary_service(echo_flush_interval=100)
        stats = service.stats()
        assert len(stats.echo_queue_depths) == 2
        assert sum(stats.echo_queue_depths) == 7  # every transition queued
        # the rollup itself drained them; a second read reports zeros
        assert sum(service.stats().echo_queue_depths) == 0

    def test_drop_counts_attributed_to_the_failed_destination(self):
        service = self.boundary_service(replication=True)
        service.fail_shard(0)
        for r, allow in ((r, True) for r in sequence_records([2, 3] * 4)):
            service.ingest_stream([(r, allow)])
        stats = service.stats()
        assert stats.echo_drops_by_shard[0] > 0
        assert stats.echo_drops_by_shard[1] == 0
        assert sum(stats.echo_drops_by_shard) == stats.n_echoes_dropped

    def test_shed_counter_reaches_stats(self):
        service = self.boundary_service()
        service.ingest_stream(
            (r, False) for r in sequence_records([2, 3] * 3)
        )
        # 5 transitions inside the stream, plus the boundary against the
        # predecessor carried over from the pre-observed warmup trace
        assert service.stats().n_echoes_shed == 6

    def test_fields_default_clean_on_quiet_service(self):
        service = mined_service(n_shards=2)
        # JIT drains lazily, before the destination's next own event —
        # the trailing record's echo may still sit queued, so settle it
        service.flush_echoes()
        stats = service.stats()
        assert stats.echo_drops_by_shard == (0, 0)
        assert stats.n_echoes_shed == 0
        assert sum(stats.echo_queue_depths) == 0


class TestFarmerStatsSurface:
    def test_stats_exposes_sim_cache(self):
        """Satellite: benchmarks/experiments read cache counters off
        ``Farmer.stats()`` / ``Farmer.sim_cache_stats()`` rather than
        ``farmer.miner.sim_cache`` internals."""
        farmer = Farmer(FarmerConfig(max_strength=0.0))
        for record in generate_trace("hp", 500, seed=1):
            farmer.observe(record)
            farmer.predict(record.fid)
        stats = farmer.stats()
        assert isinstance(stats.sim_cache, SimCacheStats)
        assert stats.sim_cache.lookups > 0
        assert farmer.sim_cache_stats() == farmer.miner.sim_cache_stats()

    def test_disabled_cache_reports_zero_capacity(self):
        farmer = Farmer(FarmerConfig(sim_cache_capacity=0))
        assert farmer.stats().sim_cache.capacity == 0
