"""ShardedFarmer semantics: equivalence scope, routing, cross-shard edges.

The two load-bearing properties (ISSUE 2 satellites):

* ``n_shards=1`` is bit-for-bit a plain Farmer over a 20k-record trace
  (every query point, plus the final snapshot);
* a partition-closed trace (one where no request pair straddles a shard
  boundary) mines identically to independent per-shard Farmers for any
  shard count — and with ``cross_shard_edges=False`` that per-shard
  equivalence holds for *arbitrary* traces, because each shard then sees
  exactly its routed substream.
"""

import pytest

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.errors import ConfigError
from repro.service.router import HashShardRouter
from repro.service.sharded import ShardedFarmer
from repro.traces.record import TraceRecord
from repro.traces.synthetic import generate_trace
from tests.conftest import sequence_records


def remap_fids(records, scale: int, residue: int) -> list[TraceRecord]:
    """Remap fids to ``fid * scale + residue`` (all land on one hash shard)."""
    return [
        TraceRecord(
            ts=r.ts,
            fid=r.fid * scale + residue,
            uid=r.uid,
            pid=r.pid,
            host=r.host,
            path=r.path,
            op=r.op,
            size=r.size,
            dev=r.dev,
        )
        for r in records
    ]


class TestSingleShardEquivalence:
    def test_20k_trace_bit_for_bit(self, hp_trace_20k):
        """Acceptance property: ``ShardedFarmer(n_shards=1)`` matches a
        plain Farmer on every query over a 20k-record synthetic trace."""
        trace = hp_trace_20k
        plain = Farmer(FarmerConfig(max_strength=0.3))
        service = ShardedFarmer(FarmerConfig(max_strength=0.3, n_shards=1))
        for i, record in enumerate(trace):
            plain.observe(record)
            service.observe(record)
            # the FPA query pattern: ask about the file just requested
            assert service.correlators(record.fid) == plain.correlators(record.fid)
            assert service.predict(record.fid) == plain.predict(record.fid)
            if i % 4000 == 3999:
                assert service.snapshot() == plain.snapshot()
        assert service.snapshot() == plain.snapshot()
        assert service.n_observed == plain.stats().n_observed == len(trace)
        assert service.memory_bytes() == plain.memory_bytes()

    def test_mine_matches_plain_farmer(self):
        trace = generate_trace("hp", 3_000, seed=4)
        cfg = FarmerConfig(max_strength=0.3, correlator_capacity=64)
        plain = Farmer(cfg).mine(trace)
        service = ShardedFarmer(cfg.with_(n_shards=1)).mine(trace)
        for fid in plain.constructor.graph.nodes():
            assert service.correlators(fid) == plain.correlators(fid)


class TestPerShardEquivalence:
    @pytest.mark.parametrize("n_shards", [2, 3, 4])
    def test_strict_isolation_equals_per_shard_mining(self, n_shards):
        """Under strict partition isolation, the service *is* a set of
        independent per-shard Farmers fed their routed substreams — for
        any trace and any shard count."""
        trace = generate_trace("hp", 4_000, seed=21)
        cfg = FarmerConfig(
            max_strength=0.3, n_shards=n_shards, cross_shard_edges=False
        )
        service = ShardedFarmer(cfg)
        for record in trace:
            service.observe(record)
        solo_cfg = cfg.with_(n_shards=1)
        references = [Farmer(solo_cfg) for _ in range(n_shards)]
        for record in trace:
            references[record.fid % n_shards].observe(record)
        for record in trace:
            ref = references[record.fid % n_shards]
            assert service.correlators(record.fid) == ref.correlators(record.fid)
            assert service.predict(record.fid) == ref.predict(record.fid)

    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_partition_closed_trace_any_shard_count(self, n_shards):
        """A partition-closed trace (every fid on one shard, so no
        cross-shard successor pairs exist) mines identically to
        per-shard mining even with cross-shard edges enabled, for any
        shard count — no echo ever fires."""
        residue = n_shards - 1
        trace = remap_fids(
            generate_trace("hp", 4_000, seed=8), n_shards, residue
        )
        cfg = FarmerConfig(max_strength=0.3, n_shards=n_shards)
        service = ShardedFarmer(cfg)
        reference = Farmer(cfg.with_(n_shards=1))
        for record in trace:
            service.observe(record)
            reference.observe(record)
            assert service.correlators(record.fid) == reference.correlators(
                record.fid
            )
        assert service.n_boundary_echoes == 0
        # the other shards never saw anything
        for index, shard in enumerate(service.shards):
            if index != residue:
                assert shard.stats().n_observed == 0


class TestCrossShardEdges:
    def test_boundary_correlation_captured(self):
        """An A→B pattern that straddles the shard boundary is mined by
        the predecessor's shard when echoes are on…"""
        cfg = FarmerConfig(max_strength=0.0, n_shards=2, weight_p=0.0)
        service = ShardedFarmer(cfg)
        for r in sequence_records([2, 3] * 10):  # owners alternate 0,1
            service.observe(r)
        assert service.n_boundary_echoes > 0
        assert service.correlation_degree(2, 3) > 0.0
        assert 3 in [e.fid for e in service.correlators(2)]

    def test_isolation_drops_boundary_correlation(self):
        """…and silently dropped under strict isolation."""
        cfg = FarmerConfig(
            max_strength=0.0, n_shards=2, weight_p=0.0, cross_shard_edges=False
        )
        service = ShardedFarmer(cfg)
        for r in sequence_records([2, 3] * 10):
            service.observe(r)
        assert service.n_boundary_echoes == 0
        assert service.correlation_degree(2, 3) == 0.0
        assert service.correlators(2) == []

    def test_echo_skips_vector_update(self):
        """The echo path must not double-count the shared vector store:
        versions after an alternating trace match a single Farmer's."""
        cfg = FarmerConfig(max_strength=0.0, n_shards=2)
        service = ShardedFarmer(cfg)
        plain = Farmer(FarmerConfig(max_strength=0.0))
        for r in sequence_records([2, 3, 2, 3, 2], path="/a/b"):
            service.observe(r)
            plain.observe(r)
        for fid in (2, 3):
            assert service.vector_store.version_of(
                fid
            ) == plain.constructor.vector_version(fid)
            assert service.vector_store.get(fid) == plain.constructor.vector_of(fid)


class TestRoutingAndQueries:
    def test_queries_route_to_owner(self):
        service = ShardedFarmer(FarmerConfig(n_shards=4, max_strength=0.0))
        trace = generate_trace("hp", 1_000, seed=3)
        for record in trace:
            service.observe(record)
        for record in trace[:50]:
            owner = service.shard_of(record.fid)
            assert owner == record.fid % 4
            assert (
                service.correlators(record.fid)
                == service.shards[owner].correlators(record.fid)
            )

    def test_router_shard_count_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            ShardedFarmer(FarmerConfig(n_shards=4), router=HashShardRouter(2))

    def test_range_policy_runs(self):
        service = ShardedFarmer(FarmerConfig(n_shards=2, shard_policy="range"))
        for record in generate_trace("hp", 500, seed=5):
            service.observe(record)
        assert service.n_observed == 500

    def test_op_filter_respected(self):
        cfg = FarmerConfig(n_shards=2, op_filter=("open",))
        service = ShardedFarmer(cfg)
        for r in sequence_records([1, 2, 3], op="stat"):
            service.observe(r)
        assert service.n_observed == 0
        service.mine(sequence_records([1, 2, 1, 2], op="open"))
        assert service.n_observed == 4


class TestMineBatch:
    def test_mine_agrees_with_observe_loop(self):
        """Batch mine and an observe() loop agree on every owned list
        once queried (both rank against the same final state)."""
        trace = generate_trace("hp", 2_000, seed=17)
        cfg = FarmerConfig(
            max_strength=0.3, correlator_capacity=64, n_shards=4
        )
        batched = ShardedFarmer(cfg).mine(trace)
        looped = ShardedFarmer(cfg)
        for record in trace:
            looped.observe(record)
        for record in trace:
            assert batched.correlators(record.fid) == looped.correlators(record.fid)
        assert batched.n_observed == looped.n_observed == len(trace)
        assert batched.n_boundary_echoes == looped.n_boundary_echoes

    def test_mine_returns_self(self):
        service = ShardedFarmer(FarmerConfig(n_shards=2))
        assert service.mine(generate_trace("hp", 200, seed=1)) is service


class TestSharedCache:
    def test_shared_and_private_caches_agree(self):
        """Caching (shared or per-shard) never changes mining results."""
        trace = generate_trace("hp", 2_000, seed=6)
        shared = ShardedFarmer(FarmerConfig(n_shards=4, max_strength=0.3))
        private = ShardedFarmer(
            FarmerConfig(n_shards=4, max_strength=0.3, shared_sim_cache=False)
        )
        for record in trace:
            shared.observe(record)
            private.observe(record)
            assert shared.predict(record.fid) == private.predict(record.fid)
        assert shared.sim_cache is not None
        assert private.sim_cache is None

    def test_shared_cache_cross_shard_reuse(self):
        """A sim computed by one shard is served to another: total
        lookups exceed what any one shard could have hit alone."""
        trace = generate_trace("hp", 3_000, seed=6)
        service = ShardedFarmer(FarmerConfig(n_shards=4, max_strength=0.0))
        for record in trace:
            service.observe(record)
            service.predict(record.fid)
        stats = service.sim_cache_stats()
        assert stats.hits > 0
        # every shard's view of the shared counters is the same object
        for shard in service.shards:
            assert shard.miner.sim_cache is service.sim_cache
