"""Tests for the LRU metadata cache."""

import pytest

from repro.errors import ConfigError
from repro.storage.cache import LRUCache


class TestBasics:
    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            LRUCache(0)

    def test_hit_miss_counting(self):
        cache = LRUCache(2)
        assert cache.lookup(1) is None
        cache.insert(1, "a")
        assert cache.lookup(1).value == "a"
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_ratio() == 0.5

    def test_hit_ratio_nan_initially(self):
        hr = LRUCache(2).hit_ratio()
        assert hr != hr

    def test_peek_does_not_count_or_promote(self):
        cache = LRUCache(2)
        cache.insert(1, "a")
        cache.insert(2, "b")
        cache.peek(1)  # no promotion
        cache.insert(3, "c")  # evicts LRU = 1
        assert 1 not in cache
        assert cache.hits == 0 and cache.misses == 0


class TestEviction:
    def test_lru_order(self):
        cache = LRUCache(2)
        cache.insert(1, "a")
        cache.insert(2, "b")
        cache.lookup(1)  # promote 1
        cache.insert(3, "c")  # evicts 2
        assert 1 in cache and 3 in cache and 2 not in cache

    def test_eviction_callback(self):
        evicted = []
        cache = LRUCache(1, on_evict=lambda k, e: evicted.append(k))
        cache.insert(1, "a")
        cache.insert(2, "b")
        assert evicted == [1]

    def test_invalidate_skips_callback(self):
        evicted = []
        cache = LRUCache(2, on_evict=lambda k, e: evicted.append(k))
        cache.insert(1, "a")
        assert cache.invalidate(1)
        assert not cache.invalidate(1)
        assert evicted == []

    def test_len_bounded(self):
        cache = LRUCache(3)
        for i in range(10):
            cache.insert(i, i)
        assert len(cache) == 3

    def test_keys_lru_to_mru(self):
        cache = LRUCache(3)
        for i in (1, 2, 3):
            cache.insert(i, i)
        cache.lookup(1)
        assert cache.keys() == [2, 3, 1]


class TestPrefetchBookkeeping:
    def test_prefetched_marked_unused(self):
        cache = LRUCache(2)
        cache.insert(1, "a", prefetched=True)
        entry = cache.peek(1)
        assert entry.prefetched and not entry.used_since_prefetch

    def test_demand_hit_marks_used(self):
        cache = LRUCache(2)
        cache.insert(1, "a", prefetched=True)
        cache.lookup(1)
        assert cache.peek(1).used_since_prefetch

    def test_demand_insert_counts_as_used(self):
        cache = LRUCache(2)
        cache.insert(1, "a")
        entry = cache.peek(1)
        assert not entry.prefetched and entry.used_since_prefetch

    def test_prefetch_refresh_keeps_demand_provenance(self):
        """Prefetching an already-cached demand entry must not mark it
        speculative."""
        cache = LRUCache(2)
        cache.insert(1, "a")
        cache.insert(1, "a", prefetched=True)
        assert not cache.peek(1).prefetched

    def test_demand_refresh_clears_prefetch_provenance(self):
        cache = LRUCache(2)
        cache.insert(1, "a", prefetched=True)
        cache.insert(1, "b", prefetched=False)
        entry = cache.peek(1)
        assert not entry.prefetched and entry.used_since_prefetch

    def test_reset_counters(self):
        cache = LRUCache(2)
        cache.insert(1, "a")
        cache.lookup(1)
        cache.reset_counters()
        assert cache.hits == 0 and cache.misses == 0


class TestEdgeCases:
    def test_contains_and_invalidate_missing(self):
        cache = LRUCache(2)
        cache.insert(1, "a")
        assert 1 in cache and 2 not in cache
        assert cache.invalidate(1) is True
        assert cache.invalidate(1) is False

    def test_refresh_promotes_to_mru(self):
        cache = LRUCache(2)
        cache.insert(1, "a")
        cache.insert(2, "b")
        cache.insert(1, "a2")  # refresh: 2 becomes the LRU victim
        cache.insert(3, "c")
        assert 1 in cache and 2 not in cache
        assert cache.peek(1).value == "a2"

    def test_hit_ratio_counts_only_lookups(self):
        cache = LRUCache(2)
        cache.insert(1, "a")
        cache.lookup(1)
        cache.lookup(9)
        cache.peek(1)  # never counted
        assert cache.hit_ratio() == 0.5
