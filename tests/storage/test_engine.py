"""Tests for the discrete-event loop."""

import pytest

from repro.errors import SimulationError
from repro.storage.engine import EventLoop


class TestEventLoop:
    def test_time_ordering(self):
        loop = EventLoop()
        fired = []
        loop.schedule_at(30, lambda: fired.append("c"))
        loop.schedule_at(10, lambda: fired.append("a"))
        loop.schedule_at(20, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a", "b", "c"]

    def test_fifo_within_same_instant(self):
        loop = EventLoop()
        fired = []
        for tag in ("x", "y", "z"):
            loop.schedule_at(5, lambda t=tag: fired.append(t))
        loop.run()
        assert fired == ["x", "y", "z"]

    def test_clock_advances(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(7, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [7]
        assert loop.now == 7

    def test_schedule_after(self):
        loop = EventLoop()
        seen = []
        loop.schedule_at(10, lambda: loop.schedule_after(5, lambda: seen.append(loop.now)))
        loop.run()
        assert seen == [15]

    def test_past_scheduling_rejected(self):
        loop = EventLoop()
        loop.schedule_at(10, lambda: None)
        loop.run()
        with pytest.raises(SimulationError):
            loop.schedule_at(5, lambda: None)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventLoop().schedule_after(-1, lambda: None)

    def test_cascading_events(self):
        """Events scheduling events run to completion."""
        loop = EventLoop()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 100:
                loop.schedule_after(1, tick)

        loop.schedule_at(0, tick)
        loop.run()
        assert count[0] == 100
        assert loop.processed == 100

    def test_max_events(self):
        loop = EventLoop()
        for i in range(10):
            loop.schedule_at(i, lambda: None)
        assert loop.run(max_events=4) == 4
        assert loop.pending() == 6
        assert loop.run() == 6
