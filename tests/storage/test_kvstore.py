"""Tests for the B-tree key/value store (Berkeley DB substitute)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KVStoreError
from repro.storage.kvstore import BTreeKVStore


class TestPointOps:
    def test_put_get(self):
        store = BTreeKVStore()
        store.put(5, "five")
        assert store.get(5) == "five"
        assert store.get(6) is None
        assert store.get(6, "dflt") == "dflt"

    def test_overwrite(self):
        store = BTreeKVStore()
        store.put(1, "a")
        store.put(1, "b")
        assert store.get(1) == "b"
        assert len(store) == 1

    def test_contains(self):
        store = BTreeKVStore()
        store.put(1, "a")
        assert 1 in store and 2 not in store

    def test_contains_value_none(self):
        store = BTreeKVStore()
        store.put(1, None)
        assert 1 in store

    def test_delete(self):
        store = BTreeKVStore()
        store.put(1, "a")
        assert store.delete(1)
        assert not store.delete(1)
        assert not store.delete(99)
        assert store.get(1) is None
        assert len(store) == 0

    def test_resurrect_after_delete(self):
        store = BTreeKVStore()
        store.put(1, "a")
        store.delete(1)
        store.put(1, "b")
        assert store.get(1) == "b"
        assert len(store) == 1
        assert store.keys().count(1) == 1  # no duplicate key

    def test_op_counters(self):
        store = BTreeKVStore()
        store.put(1, "a")
        store.get(1)
        store.get(2)
        assert store.puts == 1 and store.gets == 2

    def test_batch_get(self):
        store = BTreeKVStore()
        store.put(1, "a")
        assert store.batch_get([1, 2]) == ["a", None]

    def test_min_degree_validation(self):
        with pytest.raises(KVStoreError):
            BTreeKVStore(min_degree=1)


class TestStructure:
    def test_many_inserts_split_nodes(self):
        store = BTreeKVStore(min_degree=2)
        for i in range(500):
            store.put(i, i * 2)
        assert store.height() > 2
        assert store.node_count() > 10
        store.check_invariants()
        for i in range(500):
            assert store.get(i) == i * 2

    def test_reverse_insert_order(self):
        store = BTreeKVStore(min_degree=2)
        for i in reversed(range(200)):
            store.put(i, i)
        store.check_invariants()
        assert store.keys() == list(range(200))

    def test_range_scan(self):
        store = BTreeKVStore(min_degree=3)
        for i in range(0, 100, 2):
            store.put(i, i)
        assert [k for k, _ in store.range(10, 20)] == [10, 12, 14, 16, 18, 20]
        assert [k for k, _ in store.range(lo=95)] == [96, 98]
        assert [k for k, _ in store.range(hi=3)] == [0, 2]

    def test_range_skips_tombstones(self):
        store = BTreeKVStore()
        for i in range(10):
            store.put(i, i)
        store.delete(5)
        assert 5 not in [k for k, _ in store.range()]

    def test_scan_counter(self):
        store = BTreeKVStore()
        list(store.range())
        assert store.scans == 1


class TestPersistence:
    def test_dump_load_roundtrip(self, tmp_path):
        store = BTreeKVStore()
        for i in range(50):
            store.put(i, {"v": i})
        store.delete(7)
        path = tmp_path / "kv.jsonl"
        assert store.dump(path) == 49
        loaded = BTreeKVStore.load(path)
        assert len(loaded) == 49
        assert loaded.get(3) == {"v": 3}
        assert loaded.get(7) is None


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["put", "delete", "get"]),
                st.integers(min_value=0, max_value=50),
            ),
            max_size=300,
        )
    )
    def test_matches_dict_model(self, ops):
        """The store behaves exactly like a dict under any op sequence."""
        store = BTreeKVStore(min_degree=2)
        model: dict[int, int] = {}
        for op, key in ops:
            if op == "put":
                store.put(key, key * 3)
                model[key] = key * 3
            elif op == "delete":
                assert store.delete(key) == (key in model)
                model.pop(key, None)
            else:
                assert store.get(key) == model.get(key)
        assert len(store) == len(model)
        assert store.keys() == sorted(model)
        store.check_invariants()


class TestEdgeCases:
    def test_reserved_tombstone_value_rejected(self):
        from repro.storage.kvstore import _TOMBSTONE

        store = BTreeKVStore()
        with pytest.raises(KVStoreError, match="reserved"):
            store.put(1, _TOMBSTONE)

    def test_membership_and_keys_not_charged(self):
        store = BTreeKVStore()
        store.put(1, "a")
        gets, scans = store.gets, store.scans
        assert 1 in store and 2 not in store
        store.keys()
        assert (store.gets, store.scans) == (gets, scans)

    def test_load_skips_blank_lines_and_resets_puts(self, tmp_path):
        path = tmp_path / "kv.jsonl"
        path.write_text('[1,"a"]\n\n[2,"b"]\n')
        store = BTreeKVStore.load(path)
        assert store.keys() == [1, 2]
        assert store.puts == 0  # rebuild I/O is not charged to the run

    def test_dump_does_not_charge_a_scan(self, tmp_path):
        store = BTreeKVStore()
        store.put(1, "a")
        store.dump(tmp_path / "kv.jsonl")
        assert store.scans == 0

    def test_bounded_range_on_deep_tree(self):
        store = BTreeKVStore(min_degree=2)
        for i in range(300):
            store.put(i, i)
        assert [k for k, _ in store.range(120, 140)] == list(range(120, 141))

    def test_delete_then_len_then_resurrect_on_deep_tree(self):
        store = BTreeKVStore(min_degree=2)
        for i in range(100):
            store.put(i, i)
        assert store.delete(50) and not store.delete(50)
        assert len(store) == 99
        store.put(50, "back")
        assert len(store) == 100 and store.get(50) == "back"
        store.check_invariants()

    def test_approx_bytes_grows(self):
        store = BTreeKVStore(min_degree=2)
        empty = store.approx_bytes()
        for i in range(200):
            store.put(i, i)
        assert store.approx_bytes() > empty

    def test_check_invariants_detects_corruption(self):
        store = BTreeKVStore(min_degree=2)
        for i in range(50):
            store.put(i, i)
        node = store._root
        while not node.leaf:
            node = node.children[0]
        node.keys.extend(range(1000, 1010))  # overfull + out of order
        node.values.extend(range(10))
        with pytest.raises(KVStoreError):
            store.check_invariants()
