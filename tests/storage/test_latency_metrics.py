"""Tests for the latency model and metrics collection."""

import pytest

from repro.errors import ConfigError
from repro.storage.latency import LatencyModel
from repro.storage.metrics import MetricsCollector
from repro.utils.rng import derive_rng


class TestLatencyModel:
    def test_hit_cheaper_than_miss(self):
        lat = LatencyModel()
        assert lat.demand_service_ns(hit=True) < lat.demand_service_ns(hit=False)

    def test_miss_includes_kv(self):
        lat = LatencyModel(cache_hit_ns=10, kv_lookup_ns=100)
        assert lat.demand_service_ns(hit=False) == 110
        assert lat.demand_service_ns(hit=True) == 10

    def test_prefetch_service(self):
        lat = LatencyModel(prefetch_item_ns=77)
        assert lat.prefetch_service_ns() == 77

    def test_no_jitter_without_rng(self):
        lat = LatencyModel(jitter_sigma=0.5)
        assert lat.demand_service_ns(True) == lat.cache_hit_ns

    def test_jitter_varies(self):
        lat = LatencyModel(jitter_sigma=0.5)
        rng = derive_rng(0, "jitter")
        samples = {lat.demand_service_ns(True, rng) for _ in range(20)}
        assert len(samples) > 1
        assert all(s >= 1 for s in samples)

    def test_validation(self):
        with pytest.raises(ConfigError):
            LatencyModel(cache_hit_ns=0)
        with pytest.raises(ConfigError):
            LatencyModel(network_ns=-1)
        with pytest.raises(ConfigError):
            LatencyModel(jitter_sigma=-0.1)


class TestMetricsCollector:
    def test_demand_recording(self):
        m = MetricsCollector()
        m.record_demand(response_ns=100, wait_ns=10, hit=True)
        m.record_demand(response_ns=300, wait_ns=30, hit=False)
        report = m.report()
        assert report.demand_requests == 2
        assert report.demand_hits == 1
        assert report.hit_ratio == 0.5
        assert report.mean_response_ns == pytest.approx(200)
        assert report.mean_wait_ns == pytest.approx(20)
        assert report.max_response_ns == 300

    def test_empty_report_nan(self):
        report = MetricsCollector().report()
        assert report.hit_ratio != report.hit_ratio
        assert report.prefetch_accuracy != report.prefetch_accuracy
        assert report.utilization != report.utilization

    def test_prefetch_accuracy(self):
        m = MetricsCollector()
        m.prefetch_completed = 10
        m.prefetch_used = 6
        assert m.report().prefetch_accuracy == pytest.approx(0.6)

    def test_utilization(self):
        m = MetricsCollector()
        m.record_busy(500)
        m.makespan_ns = 1000
        assert m.report().utilization == pytest.approx(0.5)

    def test_mean_response_ms(self):
        m = MetricsCollector()
        m.record_demand(response_ns=2_000_000, wait_ns=0, hit=True)
        assert m.report().mean_response_ms == pytest.approx(2.0)

    def test_miner_memory_passthrough(self):
        assert MetricsCollector().report(miner_memory_bytes=42).miner_memory_bytes == 42
