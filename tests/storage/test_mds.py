"""Tests for the metadata server and cluster simulation."""

import pytest

from repro.core.farmer import Farmer
from repro.core.config import FarmerConfig
from repro.storage.cluster import HustCluster, SimulationConfig, run_simulation
from repro.storage.latency import LatencyModel
from repro.storage.prefetch import FarmerPrefetcher, NoPrefetcher, PredictorPrefetcher
from repro.baselines.nexus import Nexus
from repro.errors import ConfigError
from tests.conftest import sequence_records


def replay(fids, prefetcher=None, **config_kwargs):
    records = [r.with_ts(i * 1_000_000) for i, r in enumerate(sequence_records(fids))]
    cfg = SimulationConfig(**config_kwargs) if config_kwargs else SimulationConfig()
    return run_simulation(records, prefetcher or NoPrefetcher(), cfg)


class TestDemandPath:
    def test_all_counted(self):
        report = replay([1, 2, 3, 1, 2, 3])
        assert report.demand_requests == 6

    def test_first_access_misses_then_hits(self):
        report = replay([1, 1, 1])
        assert report.demand_hits == 2
        assert report.hit_ratio == pytest.approx(2 / 3)

    def test_eviction_causes_miss(self):
        report = replay([1, 2, 3, 1], cache_capacity=2)
        assert report.demand_hits == 0  # 1 evicted before its re-access

    def test_response_includes_service(self):
        lat = LatencyModel(cache_hit_ns=10_000, kv_lookup_ns=90_000)
        report = replay([1], latency=lat)
        assert report.mean_response_ns >= 100_000

    def test_network_latency_added(self):
        lat_no = LatencyModel(network_ns=0)
        lat_net = LatencyModel(network_ns=50_000)
        r0 = replay([1, 2, 3], latency=lat_no)
        r1 = replay([1, 2, 3], latency=lat_net)
        assert r1.mean_response_ns == pytest.approx(r0.mean_response_ns + 50_000)


class TestPrefetchPath:
    def _farmer_prefetcher(self):
        return FarmerPrefetcher(Farmer(FarmerConfig(max_strength=0.0)))

    def test_prefetch_improves_hits(self):
        """A strictly alternating pattern with eviction pressure: the
        predictor prefetches the next file before its demand arrives."""
        pattern = [1, 2, 3, 4] * 30
        no_pf = replay(pattern, NoPrefetcher(), cache_capacity=2)
        with_pf = replay(pattern, self._farmer_prefetcher(), cache_capacity=2)
        assert with_pf.hit_ratio > no_pf.hit_ratio

    def test_prefetch_counters_consistent(self):
        report = replay([1, 2, 3] * 20, self._farmer_prefetcher(), cache_capacity=2)
        assert report.prefetch_issued >= report.prefetch_completed
        assert report.prefetch_used <= report.prefetch_completed
        assert report.prefetch_accuracy <= 1.0

    def test_nexus_prefetcher_works(self):
        report = replay([1, 2, 3] * 20, PredictorPrefetcher(Nexus()), cache_capacity=2)
        assert report.prefetch_issued > 0

    def test_noop_never_prefetches(self):
        report = replay([1, 2] * 10, NoPrefetcher())
        assert report.prefetch_issued == 0
        assert report.prefetch_completed == 0

    def test_miner_overhead_charged(self):
        fast = replay([1, 2] * 20, NoPrefetcher())
        slow = replay(
            [1, 2] * 20,
            PredictorPrefetcher(Nexus(), k=0, overhead_ns=200_000),
        )
        assert slow.mean_response_ns > fast.mean_response_ns


class TestCluster:
    def test_multi_mds_partitioning(self):
        records = [r.with_ts(i * 1_000_000) for i, r in enumerate(sequence_records([1, 2, 3, 4] * 10))]
        cluster = HustCluster(SimulationConfig(n_mds=2), NoPrefetcher())
        report = cluster.run(records)
        assert report.demand_requests == 40
        # both shards hold some keys
        assert len(cluster.servers[0].kvstore) > 0
        assert len(cluster.servers[1].kvstore) > 0

    def test_route_stable(self):
        cluster = HustCluster(SimulationConfig(n_mds=3), NoPrefetcher())
        assert cluster.route(7) is cluster.route(7)

    def test_preload_unique(self):
        records = sequence_records([5, 5, 6])
        cluster = HustCluster(SimulationConfig(), NoPrefetcher())
        assert cluster.preload(records) == 2

    def test_empty_trace(self):
        report = run_simulation([], NoPrefetcher(), SimulationConfig())
        assert report.demand_requests == 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SimulationConfig(cache_capacity=0)
        with pytest.raises(ConfigError):
            SimulationConfig(n_mds=0)
        with pytest.raises(ConfigError):
            SimulationConfig(time_scale=0)

    def test_deterministic(self, hp_trace):
        subset = hp_trace[:400]
        a = run_simulation(subset, NoPrefetcher(), SimulationConfig())
        b = run_simulation(subset, NoPrefetcher(), SimulationConfig())
        assert a == b

    def test_makespan_positive(self, hp_trace):
        report = run_simulation(hp_trace[:100], NoPrefetcher(), SimulationConfig())
        assert report.makespan_ns > 0
        assert 0 < report.utilization < 1
