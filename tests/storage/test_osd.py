"""Tests for the object storage device cost model."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.storage.osd import ObjectStorageDevice, ReadCost


class TestPlacement:
    def test_sequential_allocation(self):
        osd = ObjectStorageDevice()
        a = osd.place(1, 100)
        b = osd.place(2, 200)
        assert a.offset == 0 and a.end == 100
        assert b.offset == 100 and b.end == 300

    def test_double_place_rejected(self):
        osd = ObjectStorageDevice()
        osd.place(1, 10)
        with pytest.raises(SimulationError):
            osd.place(1, 10)

    def test_zero_length_rejected(self):
        with pytest.raises(ConfigError):
            ObjectStorageDevice().place(1, 0)

    def test_place_group_contiguous(self):
        osd = ObjectStorageDevice()
        extents = osd.place_group([1, 2, 3], [10, 10, 10])
        assert [e.offset for e in extents] == [0, 10, 20]

    def test_place_group_arity(self):
        with pytest.raises(ConfigError):
            ObjectStorageDevice().place_group([1], [10, 20])

    def test_locate(self):
        osd = ObjectStorageDevice()
        osd.place(1, 10)
        assert osd.locate(1).length == 10
        assert osd.is_placed(1) and not osd.is_placed(2)
        with pytest.raises(KeyError):
            osd.locate(2)


class TestReadCost:
    def test_contiguous_single_seek(self):
        osd = ObjectStorageDevice()
        osd.place_group([1, 2, 3], [1024, 1024, 1024])
        cost = osd.read_batch([1, 2, 3])
        assert cost.n_seeks == 1
        assert cost.bytes_read == 3072

    def test_scattered_batch_seeks(self):
        osd = ObjectStorageDevice()
        for oid in range(6):
            osd.place(oid, 1024)
        cost = osd.read_batch([0, 2, 4])  # gaps between all three
        assert cost.n_seeks == 3

    def test_order_irrelevant(self):
        osd = ObjectStorageDevice()
        osd.place_group([1, 2, 3], [1024, 1024, 1024])
        assert osd.read_batch([3, 1, 2]).n_seeks == 1

    def test_latency_model(self):
        osd = ObjectStorageDevice(seek_ns=1000, transfer_ns_per_kb=10)
        osd.place(1, 2048)
        cost = osd.read_batch([1])
        assert cost.latency_ns == 1000 + 2 * 10

    def test_empty_batch(self):
        cost = ObjectStorageDevice().read_batch([])
        assert cost.n_seeks == 0 and cost.latency_ns == 0

    def test_counters(self):
        osd = ObjectStorageDevice()
        osd.place(1, 10)
        osd.read_batch([1])
        osd.read_batch([1])
        assert osd.reads == 2
        assert osd.total_seeks == 2
        assert len(osd) == 1

    def test_cost_validation(self):
        with pytest.raises(ConfigError):
            ObjectStorageDevice(seek_ns=-1)


class TestReadBatchRegressions:
    """Pinned behaviour for the repeated-id accounting fix.

    A batch that names the same object twice used to bill its extent
    twice (double seeks, double bytes); the second read is served from
    the request buffer and must be free.
    """

    def test_repeated_object_charged_once(self):
        osd = ObjectStorageDevice()
        osd.place(1, 1024)
        repeated = osd.read_batch([1, 1, 1])
        single = ObjectStorageDevice()
        single.place(1, 1024)
        assert repeated == single.read_batch([1])
        assert repeated.n_objects == 1
        assert repeated.bytes_read == 1024

    def test_repeated_ids_keep_first_seen_order(self):
        osd = ObjectStorageDevice()
        for oid in range(6):
            osd.place(oid, 1024)
        assert osd.read_batch([4, 0, 4, 0, 2]) == osd.read_batch([4, 0, 2])

    def test_empty_batch_not_counted_as_a_read(self):
        osd = ObjectStorageDevice()
        cost = osd.read_batch([])
        assert cost == ReadCost(0, 0, 0, 0)
        assert osd.reads == 0 and osd.total_seeks == 0

    def test_unplaced_object_raises(self):
        osd = ObjectStorageDevice()
        osd.place(1, 10)
        with pytest.raises(SimulationError, match="unplaced object 2"):
            osd.read_batch([1, 2])


class TestFastTier:
    def test_promote_demote_round_trip(self):
        osd = ObjectStorageDevice(fast_capacity=1)
        osd.place(1, 1024)
        assert osd.promote(1) is True
        assert osd.in_fast(1) and osd.fast_count == 1
        assert osd.promote(1) is False  # already fast: no-op
        assert osd.demote(1) is True
        assert osd.demote(1) is False  # already slow: no-op
        assert osd.promotions == 1 and osd.demotions == 1

    def test_promote_refuses_overfill_and_unplaced(self):
        osd = ObjectStorageDevice(fast_capacity=1)
        osd.place(1, 10)
        osd.place(2, 10)
        osd.promote(1)
        with pytest.raises(SimulationError, match="demote first"):
            osd.promote(2)
        with pytest.raises(SimulationError):
            osd.promote(99)

    def test_fast_reads_skip_seeks(self):
        osd = ObjectStorageDevice(
            seek_ns=1000,
            transfer_ns_per_kb=10,
            fast_capacity=1,
            fast_read_ns=5,
            fast_transfer_ns_per_kb=1,
        )
        osd.place(1, 2048)
        osd.place(2, 2048)
        osd.promote(1)
        cost = osd.read_batch([1, 2])
        assert (cost.n_fast, cost.n_slow) == (1, 1)
        assert cost.n_seeks == 1  # only the slow extent seeks
        assert cost.latency_ns == (5 + 2 * 1) + (1000 + 2 * 10)

    def test_untiered_device_is_all_slow(self):
        osd = ObjectStorageDevice()
        osd.place(1, 1024)
        cost = osd.read_batch([1])
        assert (cost.n_fast, cost.n_slow) == (0, 1)
        with pytest.raises(SimulationError):
            osd.promote(1)  # fast_capacity=0: no tier to promote into

    def test_tier_config_validation(self):
        with pytest.raises(ConfigError):
            ObjectStorageDevice(fast_capacity=-1)
        with pytest.raises(ConfigError):
            ObjectStorageDevice(fast_capacity=1, fast_read_ns=-1)
