"""Tests for the prefetch engines and the trace-replay client."""

import pytest

from repro.baselines.nexus import Nexus
from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.storage.client import TraceReplayClient
from repro.storage.engine import EventLoop
from repro.storage.kvstore import BTreeKVStore
from repro.storage.latency import LatencyModel
from repro.storage.mds import MetadataServer
from repro.storage.metrics import MetricsCollector
from repro.storage.prefetch import (
    FarmerPrefetcher,
    NoPrefetcher,
    PredictorPrefetcher,
    PrefetchEngine,
)
from tests.conftest import make_record, sequence_records


class TestPrefetchEngines:
    def test_protocol_conformance(self):
        for engine in (
            NoPrefetcher(),
            FarmerPrefetcher(Farmer()),
            PredictorPrefetcher(Nexus()),
        ):
            assert isinstance(engine, PrefetchEngine)
            assert engine.overhead_ns >= 0
            assert engine.memory_bytes() >= 0

    def test_farmer_candidates_thresholded(self):
        farmer = Farmer(FarmerConfig(max_strength=1.0))  # nothing is valid
        engine = FarmerPrefetcher(farmer)
        for r in sequence_records([1, 2] * 10):
            engine.observe(r)
        assert engine.candidates(make_record(1)) == []

    def test_predictor_adapter_k(self):
        engine = PredictorPrefetcher(Nexus(), k=2)
        for r in sequence_records([1, 2, 3, 4, 5] * 6):
            engine.observe(r)
        assert len(engine.candidates(make_record(1))) <= 2

    def test_predictor_adapter_validation(self):
        with pytest.raises(ValueError):
            PredictorPrefetcher(Nexus(), k=-1)

    def test_farmer_memory_reported(self):
        engine = FarmerPrefetcher(Farmer())
        for r in sequence_records([1, 2, 3] * 5):
            engine.observe(r)
        assert engine.memory_bytes() > 0

    def test_nexus_memory_reported(self):
        engine = PredictorPrefetcher(Nexus())
        for r in sequence_records([1, 2, 3] * 5):
            engine.observe(r)
        assert engine.memory_bytes() > 0


def build_server(engine: EventLoop):
    store = BTreeKVStore()
    for fid in range(20):
        store.put(fid, {"fid": fid})
    return MetadataServer(
        engine=engine,
        kvstore=store,
        prefetcher=NoPrefetcher(),
        metrics=MetricsCollector(),
        latency=LatencyModel(),
        cache_capacity=8,
    )


class TestTraceReplayClient:
    def test_replays_all(self):
        loop = EventLoop()
        mds = build_server(loop)
        records = [make_record(i % 5, ts=i * 100_000) for i in range(30)]
        client = TraceReplayClient(loop, records, lambda fid: mds)
        client.start()
        loop.run()
        assert client.submitted == 30
        assert mds.metrics.demand_requests == 30

    def test_time_scale(self):
        loop = EventLoop()
        mds = build_server(loop)
        records = [make_record(1, ts=1_000_000)]
        client = TraceReplayClient(loop, records, lambda fid: mds, time_scale=2.0)
        client.start()
        loop.run()
        # arrival at 2ms, not 1ms
        assert loop.now >= 2_000_000

    def test_empty_trace_noop(self):
        loop = EventLoop()
        client = TraceReplayClient(loop, [], lambda fid: None)
        client.start()
        assert loop.run() == 0

    def test_time_scale_validation(self):
        with pytest.raises(ValueError):
            TraceReplayClient(EventLoop(), [], lambda fid: None, time_scale=0)

    def test_lazy_scheduling(self):
        """Only one arrival is pending at any time (O(1) memory)."""
        loop = EventLoop()
        mds = build_server(loop)
        records = [make_record(i % 3, ts=i * 1_000_000) for i in range(10)]
        client = TraceReplayClient(loop, records, lambda fid: mds)
        client.start()
        assert loop.pending() == 1
