"""Tests for the dual priority request queues (§4.1)."""

import pytest

from repro.errors import ConfigError
from repro.storage.queues import DualRequestQueue
from repro.storage.requests import MetadataRequest, RequestKind


def demand(fid: int) -> MetadataRequest:
    return MetadataRequest(fid=fid, kind=RequestKind.DEMAND, arrival_ns=0)


def prefetch(fid: int) -> MetadataRequest:
    return MetadataRequest(fid=fid, kind=RequestKind.PREFETCH, arrival_ns=0)


class TestPriority:
    def test_demand_pops_first(self):
        q = DualRequestQueue()
        q.push(prefetch(10))
        q.push(demand(1))
        q.push(prefetch(11))
        q.push(demand(2))
        assert [q.pop().fid for _ in range(4)] == [1, 2, 10, 11]

    def test_fifo_within_class(self):
        q = DualRequestQueue()
        for fid in (1, 2, 3):
            q.push(demand(fid))
        assert [q.pop().fid for _ in range(3)] == [1, 2, 3]

    def test_empty_pop_none(self):
        assert DualRequestQueue().pop() is None


class TestPrefetchBounds:
    def test_overflow_drops_newest(self):
        q = DualRequestQueue(prefetch_limit=2)
        assert q.push(prefetch(1))
        assert q.push(prefetch(2))
        assert not q.push(prefetch(3))
        assert q.prefetch_dropped == 1
        assert q.prefetch_depth == 2

    def test_demand_unbounded(self):
        q = DualRequestQueue(prefetch_limit=0)
        for fid in range(100):
            assert q.push(demand(fid))
        assert q.demand_depth == 100

    def test_zero_limit_drops_all_prefetch(self):
        q = DualRequestQueue(prefetch_limit=0)
        assert not q.push(prefetch(1))

    def test_validation(self):
        with pytest.raises(ConfigError):
            DualRequestQueue(prefetch_limit=-1)


class TestDedup:
    def test_queued_prefetch_tracked(self):
        q = DualRequestQueue()
        q.push(prefetch(5))
        assert q.has_queued_prefetch(5)
        q.pop()
        assert not q.has_queued_prefetch(5)

    def test_counters(self):
        q = DualRequestQueue()
        q.push(demand(1))
        q.push(prefetch(2))
        assert q.demand_enqueued == 1
        assert q.prefetch_enqueued == 1
        assert len(q) == 2


class TestDepths:
    def test_depth_properties_track_each_class(self):
        q = DualRequestQueue()
        q.push(demand(1))
        q.push(demand(2))
        q.push(prefetch(3))
        assert (q.demand_depth, q.prefetch_depth) == (2, 1)
        q.pop()  # a demand
        assert (q.demand_depth, q.prefetch_depth) == (1, 1)

    def test_dropped_prefetch_not_tracked_for_dedup(self):
        q = DualRequestQueue(prefetch_limit=1)
        assert q.push(prefetch(1)) is True
        assert q.push(prefetch(2)) is False  # overflow: dropped
        assert q.has_queued_prefetch(1)
        assert not q.has_queued_prefetch(2)
        assert q.prefetch_dropped == 1

    def test_push_reports_acceptance(self):
        q = DualRequestQueue(prefetch_limit=0)
        assert q.push(demand(1)) is True  # demand is never dropped
        assert q.push(prefetch(2)) is False
