"""Cluster-routed prefetch: forwarding cross-server candidates.

Without routing, a per-MDS shard view drops candidates stored on other
servers (they could only fizzle against the local KV shard). With
``SimulationConfig.routed_prefetch`` the candidate is forwarded to the
owning MDS's prefetch queue — bounded per request by ``forward_budget``
and counted in ``prefetch_forwarded`` — so the owner loads its own
cache, where the future demand request will actually look.
"""

import pytest

from repro.core.config import FarmerConfig
from repro.errors import ConfigError
from repro.service.sharded import ShardedFarmer
from repro.storage.cluster import HustCluster, SimulationConfig, run_simulation
from repro.storage.prefetch import ShardedFarmerPrefetcher
from repro.traces.synthetic import generate_trace
from tests.conftest import make_record, sequence_records


def sharded_engine(n_shards=4, **cfg) -> ShardedFarmerPrefetcher:
    return ShardedFarmerPrefetcher(
        ShardedFarmer(FarmerConfig(n_shards=n_shards, **cfg))
    )


class TestPartitionCandidates:
    def test_split_is_exhaustive_and_ordered(self):
        engine = sharded_engine(max_strength=0.0)
        for record in generate_trace("hp", 2_000, seed=1):
            engine.observe(record)
        views = [engine.shard_view(i, 4) for i in range(4)]
        checked = 0
        for record in generate_trace("hp", 2_000, seed=1)[:200]:
            view = views[record.fid % 4]
            local, remote = view.partition_candidates(record)
            assert local == view.candidates(record)
            full = engine.candidates(record)
            # the split preserves the strongest-first service order
            merged = sorted(
                local + [fid for fid, _ in remote], key=full.index
            )
            assert set(merged) == set(full)
            for fid, owner in remote:
                assert owner == fid % 4 != view.server_index
            checked += len(remote)
        assert checked > 0  # the trace does produce cross-server candidates


class TestForwarding:
    def test_forward_lands_on_owner(self):
        cluster = HustCluster(
            SimulationConfig(n_mds=4, routed_prefetch=True),
            sharded_engine(max_strength=0.0),
        )
        # preload so forwarded prefetches can complete against the store
        trace = sequence_records([1, 2, 3, 5])
        cluster.preload(trace)
        owner = cluster.servers[1]
        assert owner.accept_forwarded_prefetch(5) is True
        # the idle owner starts serving the forwarded load immediately
        assert owner._busy is True
        assert cluster.metrics.prefetch_forwarded == 1
        assert cluster.metrics.prefetch_issued == 1

    def test_forward_deduplicates(self):
        cluster = HustCluster(
            SimulationConfig(n_mds=4, routed_prefetch=True),
            sharded_engine(),
        )
        owner = cluster.servers[1]
        owner._busy = True  # keep the queue static for the assertion
        assert owner.accept_forwarded_prefetch(5) is True
        assert owner.queue.has_queued_prefetch(5)
        assert owner.accept_forwarded_prefetch(5) is False  # already queued
        assert cluster.metrics.prefetch_forwarded == 1

    def test_forward_respects_queue_bound(self):
        cluster = HustCluster(
            SimulationConfig(n_mds=2, routed_prefetch=True, prefetch_limit=1),
            sharded_engine(),
        )
        owner = cluster.servers[1]
        owner._busy = True  # keep the queue full for the overflow check
        assert owner.accept_forwarded_prefetch(1) is True
        assert owner.accept_forwarded_prefetch(3) is False  # overflow
        assert cluster.metrics.prefetch_dropped == 1

    def test_wiring_only_when_routed(self):
        routed = HustCluster(
            SimulationConfig(n_mds=4, routed_prefetch=True), sharded_engine()
        )
        plain = HustCluster(SimulationConfig(n_mds=4), sharded_engine())
        assert all(s.peers is not None for s in routed.servers)
        assert all(s.peers is None for s in plain.servers)
        assert all(s.forward_budget == 0 for s in plain.servers)

    def test_forward_budget_validated(self):
        with pytest.raises(ConfigError):
            SimulationConfig(forward_budget=-1)


class TestEndToEnd:
    def test_routed_beats_drop_hit_ratio(self):
        """The tentpole claim at unit scale: same trace, same budgets,
        routing strictly improves the demand hit ratio."""
        trace = generate_trace("hp", 2_500, seed=1)
        drop = run_simulation(
            trace,
            sharded_engine(),
            SimulationConfig(n_mds=4, cache_capacity=24),
        )
        routed = run_simulation(
            trace,
            sharded_engine(),
            SimulationConfig(n_mds=4, cache_capacity=24, routed_prefetch=True),
        )
        assert routed.hit_ratio > drop.hit_ratio
        assert routed.prefetch_forwarded > 0
        assert drop.prefetch_forwarded == 0
        # forwards are issued prefetches on the owner, never extra drops
        assert routed.prefetch_forwarded <= routed.prefetch_issued

    def test_forward_bounded_per_request(self):
        """Total forwards can never exceed budget × demand requests."""
        trace = generate_trace("hp", 1_500, seed=3)
        config = SimulationConfig(
            n_mds=4, cache_capacity=24, routed_prefetch=True, forward_budget=1
        )
        report = run_simulation(trace, sharded_engine(), config)
        assert 0 < report.prefetch_forwarded <= report.demand_requests

    def test_single_mds_routing_is_inert(self):
        """With one server there is nothing to forward; the flag must
        not change behaviour."""
        trace = generate_trace("hp", 1_000, seed=2)
        plain = run_simulation(
            trace, sharded_engine(n_shards=1), SimulationConfig(n_mds=1)
        )
        routed = run_simulation(
            trace,
            sharded_engine(n_shards=1),
            SimulationConfig(n_mds=1, routed_prefetch=True),
        )
        assert routed.prefetch_forwarded == plain.prefetch_forwarded == 0
        assert routed.hit_ratio == plain.hit_ratio
