"""The sharded prefetch engine and its per-MDS pairing in the cluster."""

import pytest

from repro.core.config import FarmerConfig
from repro.core.farmer import Farmer
from repro.service.sharded import ShardedFarmer
from repro.storage.cluster import HustCluster, SimulationConfig, run_simulation
from repro.storage.prefetch import (
    FarmerPrefetcher,
    MdsShardView,
    PrefetchEngine,
    ShardedFarmerPrefetcher,
)
from repro.traces.synthetic import generate_trace
from tests.conftest import make_record, sequence_records


def sharded_engine(n_shards=4, **cfg) -> ShardedFarmerPrefetcher:
    return ShardedFarmerPrefetcher(
        ShardedFarmer(FarmerConfig(n_shards=n_shards, **cfg))
    )


class TestShardedFarmerPrefetcher:
    def test_protocol_conformance(self):
        engine = sharded_engine()
        assert isinstance(engine, PrefetchEngine)
        assert engine.overhead_ns >= 0
        assert engine.memory_bytes() >= 0
        view = engine.shard_view(1, 4)
        assert isinstance(view, PrefetchEngine)

    def test_candidates_route_to_owner(self):
        engine = sharded_engine(max_strength=0.0)
        for r in sequence_records([4, 8, 4, 8, 4]):
            engine.observe(r)
        # 4 and 8 share shard 0; its list drives the candidates
        assert engine.candidates(make_record(4)) == engine.service.predict(4)

    def test_memory_reported(self):
        engine = sharded_engine()
        for r in sequence_records([1, 2, 3] * 5):
            engine.observe(r)
        assert engine.memory_bytes() == engine.service.memory_bytes() > 0


class TestMdsShardView:
    def test_filters_to_local_fids(self):
        engine = sharded_engine(max_strength=0.0)
        for record in generate_trace("hp", 2_000, seed=1):
            engine.observe(record)
        views = [engine.shard_view(i, 4) for i in range(4)]
        checked = 0
        for record in generate_trace("hp", 2_000, seed=1)[:200]:
            view = views[record.fid % 4]
            local = view.candidates(record)
            assert all(fid % 4 == view.server_index for fid in local)
            full = set(engine.candidates(record))
            assert set(local) <= full
            checked += len(local)
        assert checked > 0  # the filter passes some local candidates

    def test_view_index_validated(self):
        engine = sharded_engine()
        with pytest.raises(ValueError):
            engine.shard_view(4, 4)

    def test_view_memory_shares_sum_to_total(self):
        engine = sharded_engine()
        for r in sequence_records([1, 2, 3, 4] * 10):
            engine.observe(r)
        views = [engine.shard_view(i, 4) for i in range(4)]
        assert sum(v.memory_bytes() for v in views) == engine.memory_bytes()

    def test_observe_flows_through_service(self):
        engine = sharded_engine()
        view = engine.shard_view(0, 4)
        for r in sequence_records([4, 1, 8, 5]):
            view.observe(r)
        assert engine.service.n_observed == 4


class TestClusterPairing:
    def test_multi_mds_uses_views(self):
        cluster = HustCluster(SimulationConfig(n_mds=4), sharded_engine())
        assert all(isinstance(s.prefetcher, MdsShardView) for s in cluster.servers)
        assert [s.prefetcher.server_index for s in cluster.servers] == [0, 1, 2, 3]

    def test_single_mds_keeps_global_engine(self):
        engine = sharded_engine(n_shards=1)
        cluster = HustCluster(SimulationConfig(n_mds=1), engine)
        assert cluster.servers[0].prefetcher is engine

    def test_plain_farmer_engine_unchanged(self):
        engine = FarmerPrefetcher(Farmer())
        cluster = HustCluster(SimulationConfig(n_mds=4), engine)
        assert all(s.prefetcher is engine for s in cluster.servers)

    def test_sharded_simulation_end_to_end(self):
        """A 4-MDS run with co-located shards completes, serves every
        demand request, and only issues locally-actionable prefetches
        (none fizzle against a foreign KV shard)."""
        trace = generate_trace("hp", 2_000, seed=1)
        report = run_simulation(
            trace,
            sharded_engine(),
            SimulationConfig(n_mds=4, cache_capacity=24),
        )
        assert report.demand_requests == len(trace)
        assert report.prefetch_issued > 0
        # local-only candidates: redundant loads are races, not misses
        assert report.prefetch_redundant <= report.prefetch_issued * 0.1
        assert report.miner_memory_bytes > 0

    def test_sharded_vs_global_prefetch_economy(self):
        """The co-located engine issues far fewer prefetches than the
        global engine at an equal-or-better cache hit ratio."""
        trace = generate_trace("hp", 2_000, seed=1)
        config = SimulationConfig(n_mds=4, cache_capacity=24)
        sharded = run_simulation(trace, sharded_engine(), config)
        global_ = run_simulation(trace, FarmerPrefetcher(Farmer()), config)
        assert sharded.prefetch_issued < global_.prefetch_issued / 2
        assert sharded.hit_ratio >= global_.hit_ratio - 0.02
