"""Tiered storage in the cluster: wiring, metrics, and the showdown.

Policy-level unit tests live in ``test_tiering_policies.py`` (numpy-
free, so they also run on the bare-interpreter CI leg); this file
exercises the simulation wiring and carries the PR's acceptance claim:
at equal tier budgets the correlated policy's fast-hit ratio is
strictly above the LRU and LFU baselines on HP@4MDS and on the
planted-truth scenarios, and the truth-reading oracle bounds the
remaining placement headroom.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigError
from repro.experiments.common import cached_trace
from repro.experiments.tiering_experiment import cached_scenario, tiered_report
from repro.storage.cluster import HustCluster, SimulationConfig, run_simulation
from repro.storage.prefetch import NoPrefetcher
from repro.storage.tiering import TIER_POLICIES

EVENTS = 2000
SHOWDOWN_SCENARIOS = ("zipfian_hotspot", "pipeline", "multi_tenant", "diurnal")


class TestClusterWiring:
    def test_untiered_report_has_nan_ratio_and_zero_counters(self):
        records = cached_trace("hp", 300, 1)
        report = run_simulation(records, NoPrefetcher(), SimulationConfig())
        assert math.isnan(report.fast_hit_ratio)
        assert report.tier_promotions == 0 and report.tier_hints_forwarded == 0

    def test_tiered_run_counts_every_demand(self):
        records = cached_trace("hp", 300, 1)
        config = SimulationConfig(tiering="lru", tier_fraction=0.1)
        report = run_simulation(records, NoPrefetcher(), config)
        assert report.tier_fast_hits + report.tier_slow_hits == len(records)
        assert 0.0 <= report.fast_hit_ratio <= 1.0
        assert report.tier_promotions >= report.tier_demotions

    def test_fast_hit_denominator_identical_across_policies(self):
        records = cached_trace("hp", 300, 1)
        totals = set()
        for policy in TIER_POLICIES:
            config = SimulationConfig(tiering=policy, tier_fraction=0.1)
            report = run_simulation(records, NoPrefetcher(), config)
            totals.add(report.tier_fast_hits + report.tier_slow_hits)
        assert totals == {len(records)}

    def test_hints_flow_across_servers(self):
        report = tiered_report(
            cached_trace("hp", 800, 1), "correlated", 0.1, n_mds=4
        )
        assert report.tier_hints_forwarded > 0
        assert report.tier_co_promotions > 0

    def test_baselines_never_forward_hints(self):
        for policy in ("lru", "lfu"):
            report = tiered_report(
                cached_trace("hp", 800, 1), policy, 0.1, n_mds=4
            )
            assert report.tier_hints_forwarded == 0
            assert report.tier_co_promotions == 0

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            SimulationConfig(tiering="mru")
        with pytest.raises(ConfigError):
            SimulationConfig(tier_fraction=0.0)
        with pytest.raises(ConfigError):
            SimulationConfig(tier_fraction=1.5)
        with pytest.raises(ConfigError):
            SimulationConfig(tier_k=-1)

    def test_tier_stores_built_per_server_and_consistent(self):
        records = cached_trace("hp", 500, 1)
        config = SimulationConfig(n_mds=2, tiering="correlated", tier_fraction=0.2)
        cluster = HustCluster(config, NoPrefetcher())
        cluster.run(records)
        fids = {r.fid for r in records}
        for i, server in enumerate(cluster.servers):
            assert server.tier is not None
            n_local = sum(1 for f in fids if f % 2 == i)
            assert server.tier.policy.capacity == max(1, round(0.2 * n_local))
            server.tier.check_consistent()


class TestShowdown:
    """The acceptance claim: correlated strictly beats both baselines
    at equal tier budgets, and the oracle bounds the headroom."""

    def test_hp_4mds_tight_budget(self):
        records = cached_trace("hp", EVENTS, 1)
        ratios = {
            policy: tiered_report(records, policy, 0.05).fast_hit_ratio
            for policy in ("lru", "lfu", "correlated")
        }
        assert ratios["correlated"] > ratios["lru"]
        assert ratios["correlated"] > ratios["lfu"]

    @pytest.mark.parametrize("name", SHOWDOWN_SCENARIOS)
    def test_scenarios(self, name):
        records, _ = cached_scenario(name, EVENTS, 1)
        ratios = {
            policy: tiered_report(records, policy, 0.1).fast_hit_ratio
            for policy in ("lru", "lfu", "correlated")
        }
        assert ratios["correlated"] > ratios["lru"]
        assert ratios["correlated"] > ratios["lfu"]

    @pytest.mark.parametrize("name", ("pipeline", "zipfian_hotspot"))
    def test_oracle_bounds_mined_placement(self, name):
        records, truth = cached_scenario(name, EVENTS, 1)
        mined = tiered_report(records, "correlated", 0.1, n_mds=1)
        oracle = tiered_report(records, "correlated", 0.1, n_mds=1, truth=truth)
        assert oracle.fast_hit_ratio >= mined.fast_hit_ratio
        assert oracle.fast_hit_ratio > 0.5
