"""Satellite property: tiering metrics are rerank-kernel-invariant.

The three re-rank kernels (bulk one-pass, entrywise reference,
vectorized array) produce bit-identical Correlator Lists; this suite
asserts the consequence at the placement layer — the full tiered
``SimulationReport`` (fast hits, promotions, hint traffic, latency
percentiles) is identical whichever kernel mined the correlators that
the correlated policy co-promotes. A kernel divergence would surface
here as a fast-hit-ratio diff, not only as a list-order diff.
"""

from __future__ import annotations

import pytest

from dataclasses import replace

from repro.experiments.common import cached_trace, farmer_config_for
from repro.experiments.tiering_experiment import cached_scenario
from repro.service.sharded import ShardedFarmer
from repro.storage.cluster import SimulationConfig, run_simulation
from repro.storage.prefetch import ShardedFarmerPrefetcher

EVENTS = 1200


def _kernels() -> list[str]:
    kernels = ["bulk", "entrywise"]
    try:
        import numpy  # noqa: F401

        kernels.append("array")
    except ImportError:
        pass
    return kernels


def _report(records, kernel: str):
    config = SimulationConfig(
        n_mds=4, cache_capacity=64, tiering="correlated", tier_fraction=0.1
    )
    engine = ShardedFarmerPrefetcher(
        ShardedFarmer(farmer_config_for("hp", n_shards=4, rerank_kernel=kernel))
    )
    return run_simulation(records, engine, config)


@pytest.mark.parametrize(
    "workload", ("hp", "pipeline"), ids=("hp-trace", "scenario")
)
def test_tiered_report_identical_across_kernels(workload):
    if workload == "hp":
        records = cached_trace("hp", EVENTS, 1)
    else:
        records, _ = cached_scenario("pipeline", EVENTS, 1)
    reports = [
        # each kernel keeps different scratch structures, so the
        # footprint differs; every behavioural metric must not
        replace(_report(records, kernel), miner_memory_bytes=0)
        for kernel in _kernels()
    ]
    first = reports[0]
    for other in reports[1:]:
        assert other == first  # exact equality: kernels are bit-identical


def test_array_kernel_present_when_numpy_is():
    """Wherever numpy exists the parity run above must cover all three
    kernels — guard against silently testing two."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        pytest.skip("no numpy: two-kernel leg")
    assert _kernels() == ["bulk", "entrywise", "array"]
