"""Tier policy unit tests — numpy-free by construction.

The policies and :class:`TieredStore` live in the numpy-free subset of
the storage package, so this file runs on the bare-interpreter CI leg:
it imports only the tiering module and the object storage device, and
stands in for the (numpy-backed) metrics collector with a minimal
counter object exposing the same tier interface.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigError, SimulationError
from repro.storage.osd import ObjectStorageDevice
from repro.storage.tiering import (
    TIER_POLICIES,
    CorrelatedTierPolicy,
    LfuTierPolicy,
    LruTierPolicy,
    TieredStore,
    make_tier_policy,
)


class _TierMetrics:
    """The slice of MetricsCollector the tiered store drives."""

    def __init__(self) -> None:
        self.tier_fast_hits = 0
        self.tier_slow_hits = 0
        self.tier_promotions = 0
        self.tier_co_promotions = 0
        self.tier_demotions = 0

    def record_tier_access(self, fast: bool) -> None:
        if fast:
            self.tier_fast_hits += 1
        else:
            self.tier_slow_hits += 1


def _store(policy, n_objects=10) -> TieredStore:
    device = ObjectStorageDevice(fast_capacity=policy.capacity)
    store = TieredStore(device, policy, _TierMetrics())
    for oid in range(n_objects):
        store.place(oid, 1024)
    return store


class TestLruPolicy:
    def test_promotes_and_evicts_oldest(self):
        store = _store(LruTierPolicy(2))
        store.access(0)
        store.access(1)
        store.access(2)  # evicts 0
        assert not store.peek_fast(0)
        assert store.peek_fast(1) and store.peek_fast(2)
        store.check_consistent()

    def test_refresh_changes_victim(self):
        store = _store(LruTierPolicy(2))
        store.access(0)
        store.access(1)
        store.access(0)  # refresh: 1 is now oldest
        store.access(2)
        assert store.peek_fast(0) and not store.peek_fast(1)

    def test_access_returns_pre_access_residency(self):
        store = _store(LruTierPolicy(2))
        assert store.access(0) is False
        assert store.access(0) is True

    def test_capacity_validation(self):
        with pytest.raises(ConfigError):
            LruTierPolicy(0)


class TestLfuPolicy:
    def test_frequent_resident_survives(self):
        store = _store(LfuTierPolicy(2))
        for _ in range(3):
            store.access(0)
        store.access(1)
        store.access(2)  # victim is 1 (freq 1), not 0 (freq 3)
        assert store.peek_fast(0) and store.peek_fast(2)
        assert not store.peek_fast(1)
        store.check_consistent()

    def test_tie_breaks_demote_longest_resident(self):
        store = _store(LfuTierPolicy(2))
        store.access(0)
        store.access(1)  # both freq 1; 0 is the older resident
        store.access(2)
        assert not store.peek_fast(0)
        assert store.peek_fast(1) and store.peek_fast(2)

    def test_frequency_survives_demotion(self):
        policy = LfuTierPolicy(1)
        store = _store(policy)
        store.access(0)
        store.access(0)
        store.access(1)  # demotes 0, but its count persists
        assert policy.frequency(0) == 2
        store.access(0)  # returning with freq 3 demotes 1 (freq 1)
        assert store.peek_fast(0)

    def test_capacity_one_newcomer_always_admitted(self):
        store = _store(LfuTierPolicy(1))
        for _ in range(5):
            store.access(7)
        store.access(3)  # cold newcomer still displaces the hot object
        assert store.peek_fast(3) and not store.peek_fast(7)
        store.check_consistent()


class TestCorrelatedPolicy:
    def test_co_promotes_correlators(self):
        store = _store(CorrelatedTierPolicy(4, k=2))
        store.access(0, correlates=[1, 2, 3])  # k=2: only 1 and 2
        assert store.peek_fast(0) and store.peek_fast(1) and store.peek_fast(2)
        assert not store.peek_fast(3)
        assert store.metrics.tier_co_promotions == 2

    def test_cold_cluster_ages_out_together(self):
        store = _store(CorrelatedTierPolicy(4, k=1))
        store.access(0, correlates=[1])
        store.access(2, correlates=[3])
        store.access(4, correlates=[5])  # evicts cluster {0, 1}
        assert not store.peek_fast(0) and not store.peek_fast(1)
        assert store.peek_fast(2) and store.peek_fast(4)

    def test_access_refreshes_whole_cluster(self):
        store = _store(CorrelatedTierPolicy(4, k=1))
        store.access(0, correlates=[1])
        store.access(2, correlates=[3])
        store.access(0, correlates=[1])  # refresh {0,1}: {2,3} now oldest
        store.access(4, correlates=[5])
        assert store.peek_fast(0) and store.peek_fast(1)
        assert not store.peek_fast(2) and not store.peek_fast(3)

    def test_unplaced_and_self_correlates_dropped(self):
        store = _store(CorrelatedTierPolicy(4, k=4), n_objects=3)
        store.access(0, correlates=[0, 1, 99])  # self + unplaced
        assert store.peek_fast(0) and store.peek_fast(1)
        assert store.device.fast_count == 2

    def test_hint_co_promotes(self):
        store = _store(CorrelatedTierPolicy(2))
        assert store.hint(5) is True
        assert store.peek_fast(5)
        assert store.metrics.tier_co_promotions == 1

    def test_hint_for_unstored_fid_ignored(self):
        store = _store(CorrelatedTierPolicy(2), n_objects=3)
        assert store.hint(99) is False
        assert store.device.fast_count == 0

    def test_source_overrides_mined_candidates(self):
        policy = CorrelatedTierPolicy(4, k=2, source=lambda fid: [fid + 1])
        store = _store(policy)
        assert store.candidates_for(3, mined=[8, 9]) == [4]
        plain = _store(CorrelatedTierPolicy(4, k=2))
        assert plain.candidates_for(3, mined=[8, 9]) == [8, 9]

    def test_k_validation(self):
        with pytest.raises(ConfigError):
            CorrelatedTierPolicy(2, k=-1)


class TestFactoryAndStore:
    def test_factory_builds_each_policy(self):
        assert isinstance(make_tier_policy("lru", 4), LruTierPolicy)
        assert isinstance(make_tier_policy("lfu", 4), LfuTierPolicy)
        correlated = make_tier_policy("correlated", 4, k=7)
        assert isinstance(correlated, CorrelatedTierPolicy)
        assert correlated.k == 7
        assert set(TIER_POLICIES) == {"lru", "lfu", "correlated"}

    def test_factory_unknown_name(self):
        with pytest.raises(ConfigError):
            make_tier_policy("mru", 4)

    def test_capacity_mismatch_rejected(self):
        device = ObjectStorageDevice(fast_capacity=3)
        with pytest.raises(ConfigError):
            TieredStore(device, LruTierPolicy(2), _TierMetrics())

    def test_metrics_and_counters(self):
        store = _store(LruTierPolicy(2))
        store.access(0)
        store.access(1)
        store.access(2)
        store.access(2)
        m = store.metrics
        assert m.tier_fast_hits == 1 and m.tier_slow_hits == 3
        assert m.tier_promotions == 3 and m.tier_demotions == 1
        assert store.device.promotions == 3 and store.device.demotions == 1

    def test_check_consistent_detects_drift(self):
        store = _store(LruTierPolicy(2))
        store.access(0)
        store.device.demote(0)  # drift injected behind the policy's back
        with pytest.raises(SimulationError):
            store.check_consistent()

    def test_policy_base_resident_order(self):
        policy = LruTierPolicy(3)
        store = _store(policy)
        store.access(0)
        store.access(1)
        store.access(0)
        assert policy.resident() == [1, 0]  # oldest-touched first
        assert len(policy) == 2 and 0 in policy and 2 not in policy
