"""Satellite properties: tiering placement is deterministic.

Two invariances, both load-bearing for the showdown numbers:

* **Process/hash-seed independence** — a tiered simulation report must
  be bit-identical in a child interpreter running under a different
  ``PYTHONHASHSEED``. Tier placement walks dicts of fids; any
  iteration-order dependence would make the fast-hit ratio a function
  of the machine, not the policy.
* **Rebalance invariance** — migrating the co-located miner shards to
  a different routing (``ShardedFarmer.rebalance``) ships every
  Correlator List verbatim, so the tiered simulation driven by the
  rebalanced service must produce the identical report: placement
  depends on what was mined, never on which shard holds it. The mined
  state is frozen for the comparison because *live* echo delivery is
  routing-dependent by design (different routings make different
  record pairs cross shard boundaries); the invariant under test is
  the query/placement layer, which rebalance must preserve exactly.
"""

from __future__ import annotations

import hashlib
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

from repro.experiments.common import cached_trace, farmer_config_for
from repro.experiments.tiering_experiment import cached_scenario, tiered_report
from repro.service.sharded import ShardedFarmer
from repro.storage.cluster import SimulationConfig, run_simulation
from repro.storage.prefetch import ShardedFarmerPrefetcher

EVENTS = 600

_CHILD = """\
import hashlib
from repro.experiments.common import cached_trace
from repro.experiments.tiering_experiment import cached_scenario, tiered_report

for policy in ("lru", "lfu", "correlated"):
    report = tiered_report(cached_trace("hp", {events}, 1), policy, 0.1)
    h = hashlib.blake2b(repr(report).encode(), digest_size=16)
    print("hp", policy, h.hexdigest())
records, _ = cached_scenario("pipeline", {events}, 1)
report = tiered_report(records, "correlated", 0.1)
h = hashlib.blake2b(repr(report).encode(), digest_size=16)
print("pipeline", "correlated", h.hexdigest())
"""


def _digests_here() -> dict[tuple[str, str], str]:
    out = {}
    for policy in ("lru", "lfu", "correlated"):
        report = tiered_report(cached_trace("hp", EVENTS, 1), policy, 0.1)
        digest = hashlib.blake2b(repr(report).encode(), digest_size=16)
        out[("hp", policy)] = digest.hexdigest()
    records, _ = cached_scenario("pipeline", EVENTS, 1)
    report = tiered_report(records, "correlated", 0.1)
    digest = hashlib.blake2b(repr(report).encode(), digest_size=16)
    out[("pipeline", "correlated")] = digest.hexdigest()
    return out


def _digests_in_child(hash_seed: str) -> dict[tuple[str, str], str]:
    src = Path(__file__).resolve().parents[2] / "src"
    out = subprocess.run(
        [sys.executable, "-c", _CHILD.format(events=EVENTS)],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(src), "PYTHONHASHSEED": hash_seed},
    )
    digests = {}
    for line in out.stdout.strip().splitlines():
        workload, policy, digest = line.split()
        digests[(workload, policy)] = digest
    return digests


def test_tiered_reports_identical_across_hash_seeds():
    here = _digests_here()
    for hash_seed in ("0", "4242"):
        assert _digests_in_child(hash_seed) == here


def test_report_repr_covers_tier_metrics():
    """The digest is only as strong as the repr: every tier counter
    must appear in it, or the subprocess check can't see a drift."""
    report = tiered_report(cached_trace("hp", EVENTS, 1), "correlated", 0.1)
    text = repr(report)
    for field in (
        "tier_fast_hits",
        "tier_slow_hits",
        "tier_promotions",
        "tier_co_promotions",
        "tier_demotions",
        "tier_hints_forwarded",
    ):
        assert field in text


def test_report_invariant_under_shard_rebalance():
    records = cached_trace("hp", EVENTS, 1)
    config = SimulationConfig(
        n_mds=4, cache_capacity=64, tiering="correlated", tier_fraction=0.1
    )

    def engine() -> ShardedFarmerPrefetcher:
        eng = ShardedFarmerPrefetcher(
            ShardedFarmer(farmer_config_for("hp", n_shards=4))
        )
        for record in records:  # pre-mine so the migration moves real state
            eng.observe(record)
        # freeze the mined state: the sim replays the records, and live
        # echo delivery would (legitimately) differ across routings
        eng.service.observe = lambda record: None
        return eng

    baseline = engine()
    rebalanced = engine()
    report = rebalanced.service.rebalance(policy="consistent_hash")
    assert report.n_migrated > 0  # the migration must actually move fids

    got = run_simulation(records, rebalanced, config)
    want = run_simulation(records, baseline, config)
    # the service's memory footprint legitimately changes when state
    # migrates (halo leftovers, ring bookkeeping); every behavioural
    # metric — placement, hits, latency, hint traffic — must not
    assert replace(got, miner_memory_bytes=0) == replace(
        want, miner_memory_bytes=0
    )
