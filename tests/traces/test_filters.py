"""Tests for attribute-based stream partitioning."""

from repro.traces.filters import iter_substreams, partition_key, split_by_attributes
from tests.conftest import make_record


class TestPartitionKey:
    def test_empty_attrs_constant(self):
        assert partition_key(make_record(1), ()) == ()

    def test_scalar_attrs(self):
        r = make_record(1, uid=7, pid=8)
        assert partition_key(r, ("user", "process")) == (7, 8)

    def test_path_maps_to_directory(self):
        r = make_record(1, path="/home/u/proj/f.c")
        assert partition_key(r, ("path",)) == ("/home/u/proj",)

    def test_top_level_path(self):
        assert partition_key(make_record(1, path="/vmunix"), ("path",)) == ("/",)

    def test_missing_path_is_none(self):
        assert partition_key(make_record(1, path=None), ("path",)) == (None,)


class TestSplitByAttributes:
    def test_order_preserved_within_stream(self):
        records = [
            make_record(1, ts=0, uid=1),
            make_record(2, ts=1, uid=2),
            make_record(3, ts=2, uid=1),
        ]
        streams = split_by_attributes(records, ("user",))
        assert [r.fid for r in streams[(1,)]] == [1, 3]
        assert [r.fid for r in streams[(2,)]] == [2]

    def test_total_partition(self):
        records = [make_record(i, uid=i % 3) for i in range(30)]
        streams = split_by_attributes(records, ("user",))
        assert sum(len(s) for s in streams.values()) == 30

    def test_none_filter_single_stream(self):
        records = [make_record(i) for i in range(5)]
        streams = split_by_attributes(records, ())
        assert list(streams) == [()]
        assert len(streams[()]) == 5


class TestIterSubstreams:
    def test_min_length(self):
        records = [make_record(1, uid=1), make_record(2, uid=2), make_record(3, uid=2)]
        streams = list(iter_substreams(records, ("user",), min_length=2))
        assert len(streams) == 1
        assert [r.fid for r in streams[0]] == [2, 3]
