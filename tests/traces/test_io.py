"""Tests for trace serialisation (CSV and JSONL round-trips)."""

import pytest

from repro.errors import TraceFormatError
from repro.traces.io import (
    dumps_csv,
    read_csv,
    read_jsonl,
    record_from_dict,
    record_to_dict,
    write_csv,
    write_jsonl,
)
from tests.conftest import make_record, sequence_records


@pytest.fixture
def sample_records():
    return [
        make_record(1, ts=10, uid=2, pid=3, host=4, path="/a/b", op="open", size=7, dev=1),
        make_record(2, ts=20, path=None, op="stat"),
        make_record(3, ts=30, path="/x/y z/with,comma"),
    ]


class TestCsvRoundtrip:
    def test_roundtrip(self, tmp_path, sample_records):
        path = tmp_path / "t.csv"
        assert write_csv(sample_records, path) == 3
        back = list(read_csv(path))
        assert back == sample_records

    def test_path_none_roundtrip(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv([make_record(1, path=None)], path)
        assert next(iter(read_csv(path))).path is None

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        assert list(read_csv(path)) == []

    def test_bad_header(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("nope,nope\n")
        with pytest.raises(TraceFormatError):
            list(read_csv(path))

    def test_bad_field_count(self, tmp_path):
        path = tmp_path / "t.csv"
        write_csv([make_record(1)], path)
        with open(path, "a") as fh:
            fh.write("1,2,3\n")
        with pytest.raises(TraceFormatError) as exc:
            list(read_csv(path))
        assert exc.value.line == 3

    def test_bad_int(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("ts,fid,uid,pid,host,path,op,size,dev\nx,1,1,1,1,,open,0,0\n")
        with pytest.raises(TraceFormatError):
            list(read_csv(path))

    def test_dumps_matches_write(self, tmp_path, sample_records):
        path = tmp_path / "t.csv"
        write_csv(sample_records, path)
        with open(path, newline="", encoding="utf-8") as fh:
            assert fh.read() == dumps_csv(sample_records)


class TestJsonlRoundtrip:
    def test_roundtrip(self, tmp_path, sample_records):
        path = tmp_path / "t.jsonl"
        assert write_jsonl(sample_records, path) == 3
        assert list(read_jsonl(path)) == sample_records

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        write_jsonl([make_record(1)], path)
        with open(path, "a") as fh:
            fh.write("\n\n")
        assert len(list(read_jsonl(path))) == 1

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text("{not json\n")
        with pytest.raises(TraceFormatError):
            list(read_jsonl(path))

    def test_missing_key(self):
        with pytest.raises(TraceFormatError):
            record_from_dict({"fid": 1})

    def test_dict_roundtrip(self):
        r = make_record(5, ts=1, path="/p")
        assert record_from_dict(record_to_dict(r)) == r


class TestLargeRoundtrip:
    def test_thousand_records(self, tmp_path):
        records = sequence_records(range(1000))
        path = tmp_path / "big.csv"
        write_csv(records, path)
        assert list(read_csv(path)) == records
