"""Tests for the trace record schema."""

import pytest

from repro.traces.record import (
    ATTRIBUTE_NAMES,
    TraceRecord,
    attribute_tuple,
    attribute_value,
    records_equal_ignoring_time,
)
from tests.conftest import make_record


class TestTraceRecord:
    def test_defaults(self):
        r = TraceRecord(ts=1, fid=2, uid=3, pid=4, host=5)
        assert r.path is None and r.op == "open" and r.size == 0 and r.dev == 0

    def test_frozen(self):
        r = make_record(1)
        with pytest.raises(AttributeError):
            r.fid = 2

    def test_with_ts(self):
        r = make_record(1, ts=10)
        r2 = r.with_ts(99)
        assert r2.ts == 99 and r2.fid == r.fid
        assert r.ts == 10  # original untouched

    def test_hashable(self):
        assert len({make_record(1), make_record(1), make_record(2)}) == 2


class TestAttributes:
    def test_names_cover_paper_attributes(self):
        for name in ("user", "process", "host", "path", "file", "dev"):
            assert name in ATTRIBUTE_NAMES

    def test_attribute_value(self):
        r = make_record(9, uid=3, pid=4, host=5, path="/a/b", dev=6)
        assert attribute_value(r, "user") == 3
        assert attribute_value(r, "process") == 4
        assert attribute_value(r, "host") == 5
        assert attribute_value(r, "path") == "/a/b"
        assert attribute_value(r, "file") == 9
        assert attribute_value(r, "dev") == 6

    def test_unknown_attribute_raises(self):
        with pytest.raises(KeyError):
            attribute_value(make_record(1), "nonsense")

    def test_attribute_tuple(self):
        r = make_record(9, uid=3, pid=4)
        assert attribute_tuple(r, ("user", "process")) == (3, 4)
        assert attribute_tuple(r, ()) == ()


class TestEquality:
    def test_ignoring_time(self):
        a = make_record(1, ts=5)
        b = make_record(1, ts=99)
        assert records_equal_ignoring_time(a, b)
        assert not records_equal_ignoring_time(a, make_record(2, ts=5))
