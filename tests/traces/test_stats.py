"""Tests for trace statistics (successor probability, Figure 1 logic)."""

import math

import pytest

from repro.traces.stats import (
    filtered_predictability,
    successor_counts,
    successor_predictability,
    summarize_trace,
)
from tests.conftest import make_record, sequence_records


class TestSuccessorCounts:
    def test_window_one(self):
        counts = successor_counts(sequence_records([1, 2, 1, 2, 3]))
        assert counts[1][2] == 2
        assert counts[2][1] == 1
        assert counts[2][3] == 1

    def test_window_ignores_self(self):
        counts = successor_counts(sequence_records([1, 1, 2]))
        assert 1 not in counts.get(1, {})

    def test_larger_window(self):
        counts = successor_counts(sequence_records([1, 2, 3]), window=2)
        assert counts[1][2] == 1 and counts[1][3] == 1

    def test_window_validation(self):
        with pytest.raises(ValueError):
            successor_counts([], window=0)


class TestSuccessorPredictability:
    def test_deterministic_stream(self):
        records = sequence_records([1, 2, 3] * 20)
        assert successor_predictability(records) == pytest.approx(1.0)

    def test_alternating_successors(self):
        # 1 is followed by 2 half the time and 3 half the time
        records = sequence_records([1, 2, 1, 3] * 25)
        # successors: 1->2 (25), 1->3 (25), 2->1 (25), 3->1 (24)
        p = successor_predictability(records)
        assert 0.6 < p < 0.8

    def test_empty_is_nan(self):
        assert math.isnan(successor_predictability([]))
        assert math.isnan(successor_predictability(sequence_records([5])))


class TestFilteredPredictability:
    def test_interleaving_recovered_by_pid(self):
        """Two deterministic per-process streams, interleaved with
        different period lengths so the merged stream is unpredictable."""
        a = [1, 2, 3] * 8  # period 3
        b = ([7, 8, 9, 10] * 6)[: len(a)]  # period 4
        records = []
        for i, (x, y) in enumerate(zip(a, b)):
            records.append(make_record(x, ts=2 * i, pid=100))
            records.append(make_record(y, ts=2 * i + 1, pid=200))
        unfiltered = successor_predictability(records)
        filtered = filtered_predictability(records, ("process",))
        assert filtered == pytest.approx(1.0)
        assert filtered > unfiltered

    def test_none_filter_equals_unfiltered(self):
        records = sequence_records([1, 2, 3, 1, 2, 4] * 10)
        assert filtered_predictability(records, ()) == pytest.approx(
            successor_predictability(records)
        )

    def test_on_synthetic_trace(self, hp_trace):
        """Figure 1's core claim on the HP workload."""
        none_p = successor_predictability(hp_trace)
        pid_p = filtered_predictability(hp_trace, ("process",))
        uid_p = filtered_predictability(hp_trace, ("user",))
        assert none_p < pid_p
        assert none_p < uid_p


class TestSummarize:
    def test_basic_counts(self):
        records = [
            make_record(1, ts=0, uid=1, pid=5, host=2, path="/a/x"),
            make_record(2, ts=1000, uid=2, pid=6, host=2, path="/a/y"),
            make_record(1, ts=3000, uid=1, pid=5, host=3, path="/a/x"),
        ]
        s = summarize_trace(records)
        assert s.n_events == 3
        assert s.n_files == 2
        assert s.n_users == 2
        assert s.n_hosts == 2
        assert s.n_directories == 1
        assert s.has_paths
        assert s.duration_ns == 3000
        assert s.mean_interarrival_ns == pytest.approx(1500)

    def test_rows_render(self):
        s = summarize_trace(sequence_records([1, 2]))
        assert any("events" in k for k, _ in s.rows())

    def test_pathless(self, ins_trace):
        assert not summarize_trace(ins_trace).has_paths
