"""Tests for the synthetic workload substrate (namespace, programs,
engine, profiles)."""

import pytest

from repro.errors import ConfigError
from repro.traces.record import TraceRecord
from repro.traces.stats import summarize_trace
from repro.traces.synthetic import (
    TRACE_NAMES,
    EngineParams,
    Namespace,
    build_program,
    generate_run_sequence,
    generate_trace,
    make_workload,
    zipf_weights,
)
from repro.utils.rng import derive_rng


class TestNamespace:
    def test_dense_fids(self):
        ns = Namespace()
        files = [ns.create("/d", f"f{i}") for i in range(5)]
        assert [f.fid for f in files] == list(range(5))

    def test_create_idempotent(self):
        ns = Namespace()
        a = ns.create("/d", "f")
        b = ns.create("/d", "f")
        assert a.fid == b.fid and len(ns) == 1

    def test_lookup(self):
        ns = Namespace()
        f = ns.create("/home/u", "x", dev=3, size=10, read_only=True)
        assert ns.by_fid(f.fid) is f
        assert ns.by_path("/home/u/x") is f
        assert "/home/u/x" in ns
        assert f.read_only and f.dev == 3 and f.size == 10

    def test_directories(self):
        ns = Namespace()
        ns.create("/a/b", "f1")
        ns.create("/a/b", "f2")
        ns.create("/c", "f3")
        assert ns.directories() == {"/a/b", "/c"}

    def test_create_many(self):
        ns = Namespace()
        files = ns.create_many("/d", ["a", "b", "c"])
        assert [f.path for f in files] == ["/d/a", "/d/b", "/d/c"]


class TestZipfWeights:
    def test_normalised(self):
        w = zipf_weights(10, 1.0)
        assert w.sum() == pytest.approx(1.0)

    def test_decreasing(self):
        w = zipf_weights(10, 1.2)
        assert all(w[i] >= w[i + 1] for i in range(9))

    def test_s_zero_uniform(self):
        w = zipf_weights(4, 0.0)
        assert w == pytest.approx([0.25] * 4)

    def test_invalid_n(self):
        with pytest.raises(ConfigError):
            zipf_weights(0, 1.0)


class TestProgramRuns:
    @pytest.fixture
    def spec(self):
        ns = Namespace()
        libs = ns.create_many("/usr/lib", ["l1.so", "l2.so"], read_only=True)
        return build_program(ns, 0, "prog", "/home/u/proj", 10, libs)

    def test_canonical_prefix(self, spec):
        rng = derive_rng(0, "run")
        seq = generate_run_sequence(spec, rng, order_noise=0.0)
        assert seq[0] is spec.executable
        assert tuple(seq[1:3]) == spec.libraries

    def test_no_noise_is_canonical(self, spec):
        rng = derive_rng(0, "run")
        seq = generate_run_sequence(spec, rng, order_noise=0.0, truncate=0.0)
        assert [f.fid for f in seq] == [f.fid for f in spec.all_files()]

    def test_subset_slices_group(self, spec):
        rng = derive_rng(1, "run")
        seq = generate_run_sequence(
            spec, rng, order_noise=0.0, truncate=0.0, subset=0.5
        )
        group_part = seq[1 + len(spec.libraries):]
        assert len(group_part) == 5  # half of 10

    def test_subset_validation(self, spec):
        with pytest.raises(ValueError):
            generate_run_sequence(spec, derive_rng(0, "x"), subset=0.0)

    def test_head_bias_prefers_head(self, spec):
        rng = derive_rng(2, "run")
        starts = []
        for _ in range(200):
            seq = generate_run_sequence(
                spec, rng, order_noise=0.0, truncate=0.0, subset=0.3, head_bias=5.0
            )
            first_group_file = seq[1 + len(spec.libraries)]
            starts.append(spec.group.index(first_group_file))
        assert sum(starts) / len(starts) < 2.0  # strongly head-skewed

    def test_revisit_only_rewinds(self, spec):
        rng = derive_rng(3, "run")
        seq = generate_run_sequence(spec, rng, order_noise=0.0, revisit_rate=0.5)
        fids = [f.fid for f in seq]
        assert len(fids) >= len(spec.all_files())
        assert set(fids) <= {f.fid for f in spec.all_files()}


class TestEngineParams:
    def test_validation(self):
        with pytest.raises(ConfigError):
            EngineParams(concurrency=0)
        with pytest.raises(ConfigError):
            EngineParams(mean_interarrival_ns=0)
        with pytest.raises(ConfigError):
            EngineParams(random_access_rate=1.0)
        with pytest.raises(ConfigError):
            EngineParams(burst_mean=0.5)
        with pytest.raises(ConfigError):
            EngineParams(pid_space=2, concurrency=8)


class TestProfiles:
    def test_known_names(self):
        assert set(TRACE_NAMES) == {"llnl", "ins", "res", "hp"}

    def test_unknown_name_raises(self):
        with pytest.raises(ConfigError):
            make_workload("nfs")

    def test_exact_event_count(self):
        assert len(generate_trace("hp", 321, seed=0)) == 321

    def test_deterministic(self):
        a = generate_trace("res", 400, seed=5)
        b = generate_trace("res", 400, seed=5)
        assert a == b

    def test_seed_changes_trace(self):
        a = generate_trace("res", 400, seed=5)
        b = generate_trace("res", 400, seed=6)
        assert a != b

    def test_timestamps_strictly_increasing(self, hp_trace):
        assert all(a.ts < b.ts for a, b in zip(hp_trace, hp_trace[1:]))

    @pytest.mark.parametrize("name", TRACE_NAMES)
    def test_path_presence_matches_paper(self, name):
        trace = generate_trace(name, 300, seed=1)
        has_paths = any(r.path is not None for r in trace)
        if name in ("hp", "llnl"):
            assert has_paths
        else:
            assert not has_paths

    def test_hp_population_shape(self, hp_trace):
        s = summarize_trace(hp_trace)
        assert s.n_users > 20  # many users
        assert s.n_hosts <= 4  # few hosts (time-sharing)

    def test_llnl_many_hosts(self, llnl_trace):
        s = summarize_trace(llnl_trace)
        assert s.n_hosts > 20  # cluster nodes

    def test_records_are_trace_records(self, ins_trace):
        assert all(isinstance(r, TraceRecord) for r in ins_trace[:10])
