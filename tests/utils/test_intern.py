"""Tests for the string interner."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.intern import Interner


class TestInterner:
    def test_first_seen_order(self):
        interner = Interner()
        assert interner.intern("a") == 0
        assert interner.intern("b") == 1
        assert interner.intern("a") == 0

    def test_constructor_seeds(self):
        interner = Interner(["x", "y", "x"])
        assert len(interner) == 2
        assert interner.id_of("y") == 1

    def test_roundtrip(self):
        interner = Interner()
        tid = interner.intern(("user", 42))
        assert interner.token_of(tid) == ("user", 42)

    def test_id_of_missing_raises(self):
        with pytest.raises(KeyError):
            Interner().id_of("missing")

    def test_get_default(self):
        interner = Interner()
        assert interner.get("nope") is None
        assert interner.get("nope", -1) == -1

    def test_contains_len_iter(self):
        interner = Interner(["p", "q"])
        assert "p" in interner and "r" not in interner
        assert len(interner) == 2
        assert list(interner) == ["p", "q"]

    def test_intern_many_preserves_order(self):
        interner = Interner()
        assert interner.intern_many(["a", "b", "a"]) == [0, 1, 0]

    def test_tokens_copy_is_safe(self):
        interner = Interner(["a"])
        tokens = interner.tokens()
        tokens.append("b")
        assert len(interner) == 1

    def test_approx_bytes_grows(self):
        interner = Interner()
        empty = interner.approx_bytes()
        for i in range(100):
            interner.intern(f"token-{i}")
        assert interner.approx_bytes() > empty


class TestInternerProperties:
    @given(st.lists(st.text(max_size=12)))
    def test_bijection(self, tokens):
        """intern/token_of is a bijection over distinct tokens."""
        interner = Interner()
        ids = [interner.intern(t) for t in tokens]
        for token, tid in zip(tokens, ids):
            assert interner.token_of(tid) == token
            assert interner.id_of(token) == interner.intern(token)
        assert len(interner) == len(set(tokens))

    @given(st.lists(st.integers(), min_size=1))
    def test_ids_dense(self, tokens):
        """Assigned ids are exactly 0..n-1."""
        interner = Interner()
        for t in tokens:
            interner.intern(t)
        assert sorted(interner.id_of(t) for t in set(tokens)) == list(
            range(len(set(tokens)))
        )
