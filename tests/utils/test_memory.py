"""Tests for memory accounting."""

from repro.utils.memory import MemoryMeter, approx_sizeof


class WithApprox:
    def approx_bytes(self) -> int:
        return 12345


class TestApproxSizeof:
    def test_protocol_dispatch(self):
        assert approx_sizeof(WithApprox()) == 12345

    def test_container_recursion(self):
        flat = approx_sizeof([1, 2, 3])
        nested = approx_sizeof([[1, 2, 3], [4, 5, 6]])
        assert nested > flat

    def test_mapping(self):
        assert approx_sizeof({"a": "bb"}) > approx_sizeof({})

    def test_strings_not_recursed(self):
        # a string is a Sequence of strings; must not loop forever
        assert approx_sizeof("hello" * 100) > 0


class TestMemoryMeter:
    def test_register_measure(self):
        meter = MemoryMeter()
        meter.register("c", WithApprox())
        assert meter.measure() == {"c": 12345}
        assert meter.total_bytes() == 12345
        assert meter.total_megabytes() == 12345 / 1e6

    def test_replace_and_unregister(self):
        meter = MemoryMeter()
        meter.register("c", WithApprox())
        meter.register("c", [1, 2, 3])
        assert meter.total_bytes() != 12345
        meter.unregister("c")
        meter.unregister("missing")  # no-op
        assert meter.total_bytes() == 0
