"""Tests for the deterministic RNG plumbing."""

import numpy as np

from repro.utils.rng import derive_rng, spawn_rngs, stable_hash64


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("abc") == stable_hash64("abc")

    def test_distinct_labels_distinct_hashes(self):
        labels = [f"label-{i}" for i in range(200)]
        assert len({stable_hash64(l) for l in labels}) == 200

    def test_fits_in_64_bits(self):
        for label in ("", "x", "a-very-long-label" * 10):
            assert 0 <= stable_hash64(label) < 2**64


class TestDeriveRng:
    def test_same_seed_label_same_stream(self):
        a = derive_rng(42, "component").random(16)
        b = derive_rng(42, "component").random(16)
        assert np.array_equal(a, b)

    def test_different_labels_independent(self):
        a = derive_rng(42, "alpha").random(16)
        b = derive_rng(42, "beta").random(16)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = derive_rng(1, "c").random(16)
        b = derive_rng(2, "c").random(16)
        assert not np.array_equal(a, b)

    def test_label_isolation(self):
        """Drawing from one stream must not perturb another."""
        probe_before = derive_rng(7, "probe").random(4)
        other = derive_rng(7, "other")
        other.random(1000)
        probe_after = derive_rng(7, "probe").random(4)
        assert np.array_equal(probe_before, probe_after)


class TestSpawnRngs:
    def test_spawns_all_labels(self):
        rngs = spawn_rngs(0, ["a", "b", "c"])
        assert set(rngs) == {"a", "b", "c"}

    def test_matches_derive(self):
        rngs = spawn_rngs(5, ["x"])
        assert np.array_equal(rngs["x"].random(8), derive_rng(5, "x").random(8))
