"""Tests for streaming statistics."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.stats import OnlineMean, OnlineStats, ReservoirSample, percentile

finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1e9, max_value=1e9
)


class TestOnlineMean:
    def test_empty(self):
        assert OnlineMean().count == 0

    def test_matches_numpy(self):
        values = [1.0, 2.5, -3.0, 7.25]
        acc = OnlineMean()
        for v in values:
            acc.add(v)
        assert acc.mean == pytest.approx(np.mean(values))

    def test_merge(self):
        a, b = OnlineMean(), OnlineMean()
        for v in (1.0, 2.0):
            a.add(v)
        for v in (3.0, 4.0, 5.0):
            b.add(v)
        a.merge(b)
        assert a.count == 5
        assert a.mean == pytest.approx(3.0)

    def test_merge_empty(self):
        a = OnlineMean()
        a.merge(OnlineMean())
        assert a.count == 0

    @given(st.lists(finite_floats, min_size=1, max_size=200))
    def test_property_mean(self, values):
        acc = OnlineMean()
        for v in values:
            acc.add(v)
        assert acc.mean == pytest.approx(np.mean(values), rel=1e-9, abs=1e-6)


class TestOnlineStats:
    def test_matches_numpy(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0]
        acc = OnlineStats()
        for v in values:
            acc.add(v)
        assert acc.mean == pytest.approx(np.mean(values))
        assert acc.variance == pytest.approx(np.var(values))
        assert acc.min == 1.0 and acc.max == 9.0

    def test_single_value_zero_variance(self):
        acc = OnlineStats()
        acc.add(42.0)
        assert acc.variance == 0.0
        assert acc.stddev == 0.0

    @given(st.lists(finite_floats, min_size=2, max_size=200))
    def test_property_variance_nonnegative(self, values):
        acc = OnlineStats()
        for v in values:
            acc.add(v)
        assert acc.variance >= 0.0
        assert acc.min <= acc.mean <= acc.max + 1e-9


class TestReservoirSample:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            ReservoirSample(capacity=0)

    def test_small_stream_kept_exactly(self):
        res = ReservoirSample(capacity=100)
        for v in range(10):
            res.add(float(v))
        assert sorted(res.values()) == [float(v) for v in range(10)]

    def test_bounded(self):
        res = ReservoirSample(capacity=32, seed=1)
        for v in range(10_000):
            res.add(float(v))
        assert len(res.values()) == 32
        assert res.count == 10_000

    def test_percentile_empty_nan(self):
        assert ReservoirSample().percentile(50) != ReservoirSample().percentile(50)

    def test_percentile_approximates(self):
        res = ReservoirSample(capacity=2048, seed=3)
        for v in range(20_000):
            res.add(float(v))
        # the reservoir median should be near the true median
        assert abs(res.percentile(50) - 10_000) < 1_500


class TestPercentileHelper:
    def test_empty_nan(self):
        out = percentile([], 50)
        assert out != out

    def test_median(self):
        assert percentile([1.0, 2.0, 3.0], 50) == 2.0
