"""Tests for the ASCII table renderer."""

import pytest

from repro.utils.tables import format_float, format_percent, format_table


class TestFormatPercent:
    def test_paper_style(self):
        assert format_percent(0.6404) == "64.04%"

    def test_digits(self):
        assert format_percent(0.5, digits=0) == "50%"


class TestFormatFloat:
    def test_default_digits(self):
        assert format_float(3.14159) == "3.1416"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"


class TestFormatTable:
    def test_alignment(self):
        out = format_table(("a", "bbbb"), [("xx", 1), ("y", 22)])
        lines = out.splitlines()
        assert len(lines) == 4
        # all rows the same width
        assert len({len(l) for l in lines}) == 1

    def test_title(self):
        out = format_table(("c",), [(1,)], title="My Table")
        assert out.startswith("My Table")

    def test_float_cells_formatted(self):
        out = format_table(("v",), [(0.123456,)])
        assert "0.1235" in out

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_empty_rows_ok(self):
        out = format_table(("a",), [])
        assert "a" in out
