"""Tests for the bulk semantic matrix."""

import numpy as np
import pytest

from repro.vsm.matrix import SemanticMatrix
from repro.vsm.vector import SemanticVector


@pytest.fixture
def matrix():
    m = SemanticMatrix()
    m.add(10, SemanticVector(scalar_ids=(1, 2, 3)))
    m.add(11, SemanticVector(scalar_ids=(1, 2, 4)))
    m.add(12, SemanticVector(scalar_ids=(7, 8)))
    return m


class TestSemanticMatrix:
    def test_len_and_keys(self, matrix):
        assert len(matrix) == 3
        assert matrix.keys == [10, 11, 12]

    def test_csr_shape(self, matrix):
        csr = matrix.to_csr()
        assert csr.shape == (3, 9)
        assert csr.nnz == 8

    def test_pairwise_values(self, matrix):
        sims = matrix.pairwise_dpa()
        assert sims.shape == (3, 3)
        assert sims[0, 0] == pytest.approx(1.0)
        assert sims[0, 1] == pytest.approx(2 / 3)
        assert sims[0, 2] == pytest.approx(0.0)

    def test_pairwise_symmetric(self, matrix):
        sims = matrix.pairwise_dpa()
        assert np.allclose(sims, sims.T)

    def test_nearest(self, matrix):
        out = matrix.nearest(0, k=2)
        assert out[0] == (11, pytest.approx(2 / 3))
        assert all(key != 10 for key, _ in out)  # self excluded

    def test_nearest_no_matches(self):
        m = SemanticMatrix()
        m.add(1, SemanticVector(scalar_ids=(1,)))
        m.add(2, SemanticVector(scalar_ids=(2,)))
        assert m.nearest(0, k=5) == []

    def test_duplicate_items_collapsed(self):
        m = SemanticMatrix()
        m.add(1, SemanticVector(scalar_ids=(3, 3, 3)))
        assert m.to_csr().nnz == 1

    def test_empty_matrix(self):
        m = SemanticMatrix()
        assert m.to_csr().shape == (0, 0)
