"""Tests for DPA/IPA similarity — including the paper's exact Table 2."""

import pytest

from repro.core.extractor import Extractor
from repro.traces.record import TraceRecord
from repro.vsm.similarity import (
    directory_similarity,
    dpa_similarity,
    ipa_similarity,
    similarity,
)
from repro.vsm.vector import SemanticVector
from repro.vsm.vocabulary import Vocabulary


@pytest.fixture
def paper_vectors():
    """The semantic vectors of the paper's Table 1 example."""
    extractor = Extractor(("user", "process", "host", "path"), Vocabulary())
    a = extractor.extract(
        TraceRecord(ts=0, fid=0, uid=1, pid=1, host=1, path="/home/user1/paper/a")
    )
    b = extractor.extract(
        TraceRecord(ts=1, fid=1, uid=1, pid=2, host=1, path="/home/user1/paper/b")
    )
    c = extractor.extract(
        TraceRecord(ts=2, fid=2, uid=2, pid=3, host=2, path="/home/user2/c")
    )
    return a, b, c


class TestTable2Exact:
    """The six numbers of the paper's Table 2, digit for digit."""

    def test_dpa_ab(self, paper_vectors):
        a, b, _ = paper_vectors
        assert dpa_similarity(a, b) == pytest.approx(5 / 7)

    def test_dpa_ac(self, paper_vectors):
        a, _, c = paper_vectors
        assert dpa_similarity(a, c) == pytest.approx(1 / 7)

    def test_dpa_bc(self, paper_vectors):
        _, b, c = paper_vectors
        assert dpa_similarity(b, c) == pytest.approx(1 / 7)

    def test_ipa_ab(self, paper_vectors):
        a, b, _ = paper_vectors
        assert ipa_similarity(a, b) == pytest.approx(2.75 / 4)

    def test_ipa_ac(self, paper_vectors):
        a, _, c = paper_vectors
        assert ipa_similarity(a, c) == pytest.approx(0.25 / 4)

    def test_ipa_bc(self, paper_vectors):
        _, b, c = paper_vectors
        assert ipa_similarity(b, c) == pytest.approx(0.25 / 4)


class TestDirectorySimilarity:
    def test_paper_value(self):
        # /home/user1/paper/a vs /home/user1/paper/b -> 3/4
        assert directory_similarity((1, 2, 3, 4), (1, 2, 3, 5)) == pytest.approx(0.75)

    def test_none_paths(self):
        assert directory_similarity(None, (1,)) == 0.0
        assert directory_similarity((1,), None) == 0.0

    def test_prefix_mode_position_sensitive(self):
        bag = directory_similarity((1, 2, 3), (3, 2, 1), mode="bag")
        prefix = directory_similarity((1, 2, 3), (3, 2, 1), mode="prefix")
        assert bag == pytest.approx(1.0)
        assert prefix == 0.0

    def test_unknown_mode(self):
        with pytest.raises(ValueError):
            directory_similarity((1,), (1,), mode="zigzag")


class TestSimilarityDispatch:
    def test_dispatch(self, paper_vectors):
        a, b, _ = paper_vectors
        assert similarity(a, b, method="ipa") == ipa_similarity(a, b)
        assert similarity(a, b, method="dpa") == dpa_similarity(a, b)

    def test_unknown_method(self, paper_vectors):
        a, b, _ = paper_vectors
        with pytest.raises(ValueError):
            similarity(a, b, method="cosine")


class TestEdgeCases:
    def test_empty_vectors(self):
        e = SemanticVector(scalar_ids=())
        assert dpa_similarity(e, e) == 0.0
        assert ipa_similarity(e, e) == 0.0

    def test_identity_full_similarity(self):
        v = SemanticVector(scalar_ids=(1, 2), path_ids=(7, 8))
        assert dpa_similarity(v, v) == pytest.approx(1.0)
        assert ipa_similarity(v, v) == pytest.approx(1.0)

    def test_one_sided_path(self):
        with_path = SemanticVector(scalar_ids=(1, 2), path_ids=(7, 8))
        without = SemanticVector(scalar_ids=(1, 2))
        # scalars fully match; path contributes 0 but counts as one item
        assert ipa_similarity(with_path, without) == pytest.approx(2 / 3)

    def test_dpa_deep_path_dominates(self):
        """The §3.2.1 drawback: deep paths drown other attributes in DPA."""
        deep_a = SemanticVector(scalar_ids=(1, 2, 3), path_ids=tuple(range(10, 22)))
        deep_b = SemanticVector(scalar_ids=(1, 2, 3), path_ids=tuple(range(30, 42)))
        # same user/proc/host, totally different deep paths
        assert dpa_similarity(deep_a, deep_b) == pytest.approx(3 / 15)
        assert ipa_similarity(deep_a, deep_b) == pytest.approx(3 / 4)
        assert ipa_similarity(deep_a, deep_b) > dpa_similarity(deep_a, deep_b)
