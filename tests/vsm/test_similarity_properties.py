"""Property-based tests on the similarity functions (Function 1)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.vsm.similarity import directory_similarity, dpa_similarity, ipa_similarity
from repro.vsm.vector import SemanticVector, bag_intersection

ids = st.integers(min_value=0, max_value=40)
scalar_tuples = st.lists(ids, max_size=10).map(tuple)
path_tuples = st.one_of(st.none(), st.lists(ids, min_size=1, max_size=8).map(tuple))
vectors = st.builds(SemanticVector, scalar_ids=scalar_tuples, path_ids=path_tuples)


class TestBagIntersectionProperties:
    @given(scalar_tuples, scalar_tuples)
    def test_symmetric(self, a, b):
        sa, sb = tuple(sorted(a)), tuple(sorted(b))
        assert bag_intersection(sa, sb) == bag_intersection(sb, sa)

    @given(scalar_tuples)
    def test_self_intersection_is_length(self, a):
        sa = tuple(sorted(a))
        assert bag_intersection(sa, sa) == len(sa)

    @given(scalar_tuples, scalar_tuples)
    def test_bounded_by_min_length(self, a, b):
        sa, sb = tuple(sorted(a)), tuple(sorted(b))
        assert 0 <= bag_intersection(sa, sb) <= min(len(sa), len(sb))


class TestSimilarityProperties:
    @given(vectors, vectors)
    def test_dpa_symmetric(self, a, b):
        assert dpa_similarity(a, b) == dpa_similarity(b, a)

    @given(vectors, vectors)
    def test_ipa_symmetric(self, a, b):
        assert ipa_similarity(a, b) == ipa_similarity(b, a)

    @given(vectors, vectors)
    def test_dpa_bounds(self, a, b):
        assert 0.0 <= dpa_similarity(a, b) <= 1.0

    @given(vectors, vectors)
    def test_ipa_bounds(self, a, b):
        assert 0.0 <= ipa_similarity(a, b) <= 1.0

    @given(vectors)
    def test_self_similarity_is_one_when_nonempty(self, v):
        if v.n_items("dpa") > 0:
            assert dpa_similarity(v, v) == 1.0
            assert ipa_similarity(v, v) == 1.0

    @given(path_tuples, path_tuples)
    def test_directory_similarity_bounds(self, a, b):
        assert 0.0 <= directory_similarity(a, b) <= 1.0
        assert 0.0 <= directory_similarity(a, b, mode="prefix") <= 1.0

    @given(path_tuples, path_tuples)
    def test_prefix_never_exceeds_bag(self, a, b):
        assert directory_similarity(a, b, mode="prefix") <= directory_similarity(
            a, b, mode="bag"
        ) + 1e-12
