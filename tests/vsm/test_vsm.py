"""Tests for vocabulary, path tokenisation and semantic vectors."""

import pytest

from repro.vsm.path import parent_directory, tokenize_path
from repro.vsm.vector import SemanticVector, bag_intersection
from repro.vsm.vocabulary import Vocabulary


class TestTokenizePath:
    def test_paper_example(self):
        assert tokenize_path("/home/user1/paper/a") == ("home", "user1", "paper", "a")

    def test_messy_slashes(self):
        assert tokenize_path("//a///b/") == ("a", "b")

    def test_relative(self):
        assert tokenize_path("a/b") == ("a", "b")

    def test_empty(self):
        assert tokenize_path("") == ()
        assert tokenize_path("/") == ()


class TestParentDirectory:
    def test_nested(self):
        assert parent_directory("/a/b/c") == "/a/b"

    def test_top_level(self):
        assert parent_directory("/a") == "/"

    def test_trailing_slash(self):
        assert parent_directory("/a/b/") == "/a"


class TestVocabulary:
    def test_namespacing(self):
        vocab = Vocabulary()
        uid_7 = vocab.scalar_token("user", 7)
        pid_7 = vocab.scalar_token("process", 7)
        assert uid_7 != pid_7

    def test_path_components_namespaced_from_scalars(self):
        vocab = Vocabulary()
        scalar = vocab.scalar_token("user", "user1")
        path = vocab.path_component("user1")
        assert scalar != path

    def test_decode(self):
        vocab = Vocabulary()
        tid = vocab.scalar_token("host", 3)
        assert vocab.decode(tid) == ("host", 3)

    def test_len_and_bytes(self):
        vocab = Vocabulary()
        assert len(vocab) == 0
        vocab.scalar_token("a", 1)
        vocab.path_components(("x", "y"))
        assert len(vocab) == 3
        assert vocab.approx_bytes() > 0


class TestBagIntersection:
    def test_multiset_semantics(self):
        assert bag_intersection((1, 1, 2), (1, 1, 3)) == 2

    def test_disjoint(self):
        assert bag_intersection((1, 2), (3, 4)) == 0

    def test_empty(self):
        assert bag_intersection((), (1,)) == 0

    def test_identical(self):
        assert bag_intersection((1, 2, 3), (1, 2, 3)) == 3


class TestSemanticVector:
    def test_sorts_scalars(self):
        v = SemanticVector(scalar_ids=(3, 1, 2))
        assert v.scalar_ids == (1, 2, 3)

    def test_n_items_dpa_vs_ipa(self):
        v = SemanticVector(scalar_ids=(1, 2, 3), path_ids=(10, 11, 12, 13))
        assert v.n_items("dpa") == 7
        assert v.n_items("ipa") == 4

    def test_n_items_no_path(self):
        v = SemanticVector(scalar_ids=(1, 2))
        assert v.n_items("dpa") == v.n_items("ipa") == 2

    def test_n_items_unknown_method(self):
        v = SemanticVector(scalar_ids=(1,), path_ids=(2,))
        with pytest.raises(ValueError):
            v.n_items("xyz")

    def test_dpa_items_merged_sorted(self):
        v = SemanticVector(scalar_ids=(5, 1), path_ids=(3, 2))
        assert v.dpa_items() == (1, 2, 3, 5)

    def test_sorted_path_ids(self):
        v = SemanticVector(scalar_ids=(), path_ids=(9, 4, 7))
        assert v.sorted_path_ids() == (4, 7, 9)
        assert SemanticVector(scalar_ids=()).sorted_path_ids() == ()

    def test_approx_bytes(self):
        small = SemanticVector(scalar_ids=(1,))
        big = SemanticVector(scalar_ids=tuple(range(50)), path_ids=tuple(range(50)))
        assert big.approx_bytes() > small.approx_bytes()
