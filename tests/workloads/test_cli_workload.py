"""The ``repro workload`` CLI subcommand."""

from __future__ import annotations

import json

from repro.cli import build_parser, main
from repro.workloads import SCENARIO_NAMES


def test_parser_accepts_workload():
    args = build_parser().parse_args(
        ["workload", "pipeline", "--events", "900", "--shards", "2"]
    )
    assert args.command == "workload"
    assert args.scenarios == ["pipeline"]
    assert args.shards == 2


def test_list_scenarios(capsys):
    assert main(["workload", "--list"]) == 0
    out = capsys.readouterr().out
    for name in SCENARIO_NAMES:
        assert name in out


def test_evaluate_one_scenario_table(capsys):
    assert main(["workload", "pipeline", "--events", "900"]) == 0
    out = capsys.readouterr().out
    assert "pipeline" in out
    assert "p@1" in out and "headroom" in out


def test_evaluate_json_rows(capsys):
    assert (
        main(["workload", "scan_storm", "--events", "900", "--json"]) == 0
    )
    row = json.loads(capsys.readouterr().out.strip())
    assert row["scenario"] == "scan_storm"
    assert 0.0 <= row["precision_at_1"] <= 1.0
    assert row["n_events"] == 900


def test_unknown_scenario_fails(capsys):
    assert main(["workload", "bogus"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_bad_ks_fails(capsys):
    assert main(["workload", "pipeline", "--ks", "1,x"]) == 2
    assert "--ks" in capsys.readouterr().err
