"""Satellite property: scenarios are process- and hash-seed-invariant.

A planted truth set that drifts between machines is not a ground
truth. Each scenario generator must emit the identical record stream
and identical truth JSON in a child process running under a different
``PYTHONHASHSEED`` — the same discipline the consistent-hash router
pins. One child covers all scenarios (one interpreter start-up, not
six).
"""

from __future__ import annotations

import hashlib
import subprocess
import sys
from pathlib import Path

from repro.workloads import SCENARIO_NAMES, generate_scenario

EVENTS = 600

_CHILD = """\
import hashlib
from repro.workloads import SCENARIO_NAMES, generate_scenario

for name in SCENARIO_NAMES:
    records, truth = generate_scenario(name, {events}, seed=11)
    h = hashlib.blake2b(digest_size=16)
    for r in records:
        h.update(repr(r).encode())
    h.update(truth.to_json().encode())
    print(name, h.hexdigest())
"""


def _digests_here() -> dict[str, str]:
    out = {}
    for name in SCENARIO_NAMES:
        records, truth = generate_scenario(name, EVENTS, seed=11)
        h = hashlib.blake2b(digest_size=16)
        for r in records:
            h.update(repr(r).encode())
        h.update(truth.to_json().encode())
        out[name] = h.hexdigest()
    return out


def _digests_in_child(hash_seed: str) -> dict[str, str]:
    src = Path(__file__).resolve().parents[2] / "src"
    out = subprocess.run(
        [sys.executable, "-c", _CHILD.format(events=EVENTS)],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": str(src), "PYTHONHASHSEED": hash_seed},
    )
    return dict(
        line.split() for line in out.stdout.strip().splitlines()
    )


def test_scenarios_identical_across_hash_seeds():
    here = _digests_here()
    assert set(here) == set(SCENARIO_NAMES)
    for hash_seed in ("0", "4242"):
        assert _digests_in_child(hash_seed) == here
