"""Satellite property: auto_rebalance tracks the diurnal load shift.

The diurnal scenario creates the day tenant's namespace first (low
fids) and the night tenant's second (high fids), so a range-partitioned
two-shard service maps the tenants onto different shards. As the
activity mix flips between phases, ``auto_rebalance`` must (a) read
the windowed load skew, (b) install ring weights monotone decreasing
in that load — the hot shard sheds namespace — and (c) leave every
query invariant across the decision.
"""

from __future__ import annotations

from repro.core.config import FarmerConfig
from repro.service.router import RangeShardRouter
from repro.service.sharded import ShardedFarmer
from repro.workloads import make_scenario

PHASE_EVENTS = 1500


def _day_night_boundary(instance) -> int:
    day = [
        f.fid
        for f in instance.namespace.files()
        if f.path.startswith("/tenants/t0")
    ]
    night = [
        f.fid
        for f in instance.namespace.files()
        if f.path.startswith("/tenants/t1")
    ]
    assert max(day) < min(night)  # creation order = fid order
    return max(day)


def test_auto_rebalance_tracks_diurnal_shift():
    instance = make_scenario("diurnal", seed=0)
    boundary = _day_night_boundary(instance)
    config = FarmerConfig(n_shards=2, attributes=instance.attributes)
    service = ShardedFarmer(
        config, router=RangeShardRouter(2, boundaries=(boundary,))
    )

    # phase A: day-dominated. Shard 0 (the day tenant's fid range)
    # must absorb the bulk of the load, and the decision must respond
    # by shrinking its ring share.
    day_phase = instance.generate(PHASE_EVENTS)
    service.mine(day_phase)
    loads_a = service.shard_loads(since_decision=True)
    assert loads_a[0] > loads_a[1]

    probes = sorted({r.fid for r in day_phase})[:40]
    before = {fid: service.predict(fid, 4) for fid in probes}
    auto_a = service.auto_rebalance()
    assert auto_a.loads == loads_a
    assert auto_a.weights[0] < auto_a.weights[1]  # hot day shard sheds
    after = {fid: service.predict(fid, 4) for fid in probes}
    assert after == before  # queries invariant across the decision

    # phase B: the mix flips toward night. The *windowed* load (only
    # what arrived since decision A) must show the flip, and the next
    # decision must weight against whichever shard is now hottest —
    # lifetime counters would still blame the day shard.
    night_phase = instance.generate(PHASE_EVENTS)
    for record in night_phase:
        service.observe(record)
    loads_b = service.shard_loads(since_decision=True)
    hot = loads_b.index(max(loads_b))
    auto_b = service.auto_rebalance()
    assert auto_b.loads == loads_b
    assert auto_b.weights.index(min(auto_b.weights)) == hot

    # the decisions must have been live, not degenerate no-ops
    assert sum(loads_b) > 0
    assert auto_b.rebalance.n_owned > 0


def test_rebalance_preserves_every_mined_list():
    """Stronger invariance: every fid's full prediction list survives
    the auto-rebalance migration bit-identically (not just probes)."""
    instance = make_scenario("diurnal", seed=1)
    boundary = _day_night_boundary(instance)
    config = FarmerConfig(n_shards=2, attributes=instance.attributes)
    service = ShardedFarmer(
        config, router=RangeShardRouter(2, boundaries=(boundary,))
    )
    records = instance.generate(2000)
    service.mine(records)
    fids = sorted({r.fid for r in records})
    before = {fid: service.predict(fid, 4) for fid in fids}
    service.auto_rebalance()
    assert {fid: service.predict(fid, 4) for fid in fids} == before
