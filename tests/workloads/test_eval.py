"""The evaluation layer: metric semantics, floors, miner parity."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.workloads import (
    SCENARIO_NAMES,
    evaluate_scenario,
    make_scenario,
    mine_scenario,
    score_miner,
)
from repro.workloads.eval import (
    ACCURACY_FLOORS,
    DEFAULT_EVENTS,
    KMetrics,
    ScenarioReport,
    check_floors,
)


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_accuracy_floors_hold(name):
    """The CI-pinned assertion: every scenario clears its floor at the
    canonical event count. A miner regression (broken blend, truncated
    window, mis-ranked lists) trips this before it ships."""
    report = evaluate_scenario(name, n_events=DEFAULT_EVENTS, seed=0)
    assert check_floors(report) == []


def test_floors_cover_every_scenario():
    assert set(ACCURACY_FLOORS) == set(SCENARIO_NAMES)
    for floors in ACCURACY_FLOORS.values():
        assert floors  # an empty floor row would assert nothing


class _OracleMiner:
    """Predicts straight from the truth set — the score ceiling."""

    def __init__(self, truth):
        self._truth = truth

    def predict(self, fid, k=None):
        return self._truth.top(fid, k if k is not None else 4)


def test_oracle_scores_perfectly(scenario_trace):
    records, truth = scenario_trace("pipeline", 1200)
    report = score_miner(
        _OracleMiner(truth), truth, records, scenario="pipeline"
    )
    for m in report.metrics:
        assert m.precision == 1.0
        assert m.recall == 1.0
    assert report.headroom == 0.0  # the oracle *is* the mined predictor


def test_report_accessors_and_dict():
    report = ScenarioReport(
        scenario="x",
        n_events=10,
        n_truth_pairs=2,
        n_scored_sources=1,
        metrics=(KMetrics(k=1, precision=0.5, recall=0.25),),
        oracle_hit_rate=0.4,
        mined_hit_rate=0.3,
    )
    assert report.at(1).precision == 0.5
    with pytest.raises(ConfigError, match="no metrics at k=7"):
        report.at(7)
    row = report.to_dict()
    assert row["precision_at_1"] == 0.5
    assert row["recall_at_1"] == 0.25
    assert row["headroom"] == pytest.approx(0.1)


def test_check_floors_reports_violations():
    report = ScenarioReport(
        scenario="pipeline",
        n_events=10,
        n_truth_pairs=2,
        n_scored_sources=1,
        metrics=(KMetrics(k=1, precision=0.1, recall=0.1),),
        oracle_hit_rate=0.0,
        mined_hit_rate=0.0,
    )
    violations = check_floors(report)
    assert any("precision_at_1" in v for v in violations)
    # recall_at_4 was never evaluated: flagged, not silently passed
    assert any("recall_at_4" in v for v in violations)
    assert check_floors(report, floors={"pipeline": {}}) == []


def test_score_miner_needs_at_least_one_k(scenario_trace):
    records, truth = scenario_trace("pipeline", 1200)
    with pytest.raises(ConfigError, match="at least one k"):
        score_miner(_OracleMiner(truth), truth, records, ks=())


def test_sharded_eval_matches_online_eval(scenario_trace):
    """Online ingestion (ReplayAgent -> admission queue -> drain) must
    score identically to batch ShardedFarmer.mine — the scenario-suite
    restatement of the drain-equivalence guarantee."""
    records, truth = scenario_trace("multi_tenant", 2000)
    batch = score_miner(
        mine_scenario(records, n_shards=4), truth, records, scenario="mt"
    )
    online = score_miner(
        mine_scenario(records, n_shards=4, online=True),
        truth,
        records,
        scenario="mt",
    )
    assert batch == online


def test_single_shard_eval_paths_agree(scenario_trace):
    """evaluate_scenario is just make+mine+score: composing the pieces
    by hand must give the identical report."""
    records, truth = scenario_trace("zipfian_hotspot", 2000)
    composed = score_miner(
        mine_scenario(records), truth, records, scenario="zipfian_hotspot"
    )
    wrapped = evaluate_scenario("zipfian_hotspot", n_events=2000, seed=0)
    assert composed == wrapped
