"""Satellite property: mining accuracy is kernel-invariant.

The three re-rank kernels (bulk one-pass, entrywise reference,
vectorized array) are bit-identical on the ranked lists by
construction; this suite asserts the consequence that matters to the
evaluation layer — identical precision/recall/headroom on every
planted-truth scenario — so a kernel divergence surfaces as an
accuracy diff, not only as a list-order diff in the kernel suites.
"""

from __future__ import annotations

import pytest

from repro.core.config import FarmerConfig
from repro.workloads import SCENARIO_NAMES, mine_scenario, score_miner

EVENTS = 2000


def _kernels() -> list[str]:
    kernels = ["bulk", "entrywise"]
    try:
        import numpy  # noqa: F401

        kernels.append("array")
    except ImportError:
        pass
    return kernels


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_precision_recall_identical_across_kernels(name, scenario_trace):
    records, truth = scenario_trace(name, EVENTS)
    reports = []
    for kernel in _kernels():
        miner = mine_scenario(records, FarmerConfig(rerank_kernel=kernel))
        reports.append(
            score_miner(miner, truth, records, scenario=name)
        )
    first = reports[0]
    for other in reports[1:]:
        assert other == first  # exact equality: kernels are bit-identical


def test_array_kernel_present_when_numpy_is():
    """The parity run above must really cover three kernels wherever
    numpy exists — guard against silently testing two."""
    try:
        import numpy  # noqa: F401
    except ImportError:
        pytest.skip("no numpy: two-kernel leg")
    assert _kernels() == ["bulk", "entrywise", "array"]
