"""The scenario DSL contract: generation, planting and the truth set."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.workloads import (
    SCENARIO_NAMES,
    PlantedPair,
    TruthSet,
    generate_scenario,
    make_scenario,
    scenario_descriptions,
)

SMALL = 1200


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_every_scenario_generates_and_plants(name, scenario_trace):
    records, truth = scenario_trace(name, SMALL)
    assert len(records) == SMALL
    assert len(truth) > 0
    assert len(truth.sources()) >= 20


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_truth_references_only_namespace_files(name):
    instance = make_scenario(name, seed=0)
    fids = {f.fid for f in instance.namespace.files()}
    for src in instance.truth.sources():
        assert src in fids
        for pair in instance.truth.successors(src):
            assert pair.dst in fids
            assert pair.src != pair.dst
            assert 0.0 < pair.strength <= 1.0


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_planted_sources_dominate_the_stream(name, scenario_trace):
    """The stream must actually exercise the planted namespace: most
    accessed fids are either truth sources or planted successors (the
    remainder is the engine's random-access pollution)."""
    records, truth = scenario_trace(name, SMALL)
    planted = set(truth.sources()) | {
        p.dst for s in truth.sources() for p in truth.successors(s)
    }
    in_truth = sum(1 for r in records if r.fid in planted)
    assert in_truth / len(records) > 0.75


@pytest.mark.parametrize("name", SCENARIO_NAMES)
def test_generation_is_resumable(name):
    whole = make_scenario(name, seed=5).generate(SMALL)
    split = make_scenario(name, seed=5)
    halves = split.generate(SMALL // 2) + split.generate(SMALL - SMALL // 2)
    assert whole == halves


def test_same_seed_reproduces_and_seeds_differ():
    a, truth_a = generate_scenario("pipeline", 800, seed=3)
    b, truth_b = generate_scenario("pipeline", 800, seed=3)
    c, _ = generate_scenario("pipeline", 800, seed=4)
    assert a == b
    assert truth_a.to_json() == truth_b.to_json()
    assert a != c


def test_truth_is_seed_invariant_population():
    """The answer key depends on the planted population, not the stream:
    the same scenario's truth is identical across seeds that share the
    population stream (seed feeds both, so same seed -> same truth) and
    stable under re-construction."""
    t1 = make_scenario("scan_storm", seed=7).truth
    t2 = make_scenario("scan_storm", seed=7).truth
    assert t1.to_json() == t2.to_json()


def test_unknown_scenario_raises():
    with pytest.raises(ConfigError, match="unknown scenario"):
        make_scenario("nope")


def test_descriptions_cover_every_scenario():
    descriptions = scenario_descriptions()
    assert set(descriptions) == set(SCENARIO_NAMES)
    assert all(descriptions.values())


def test_truth_set_ordering_dedup_and_lookup():
    truth = TruthSet(
        [
            PlantedPair(1, 2, 0.5),
            PlantedPair(1, 3, 1.0),
            PlantedPair(1, 2, 0.9),  # duplicate: first plant wins
            PlantedPair(2, 1, 0.4),
        ]
    )
    assert len(truth) == 3
    assert truth.top(1, 2) == [3, 2]
    assert truth.expected(1, 2) == 0.5
    assert truth.expected(1, 9) == 0.0
    assert (2, 1) in truth
    assert (9, 1) not in truth
    assert truth.top(9, 4) == []


def test_truth_set_rejects_bad_plants():
    with pytest.raises(ConfigError, match="strength"):
        TruthSet([PlantedPair(1, 2, 0.0)])
    with pytest.raises(ConfigError, match="self"):
        TruthSet([PlantedPair(1, 1, 0.5)])


def test_truth_set_union_and_json_roundtrip():
    a = TruthSet([PlantedPair(1, 2, 0.5)])
    b = TruthSet([PlantedPair(1, 2, 0.9), PlantedPair(3, 4, 1.0)])
    merged = a.union(b)
    assert len(merged) == 2
    assert merged.expected(1, 2) == 0.5  # first plant wins across unions
    rebuilt = TruthSet.from_json(merged.to_json())
    assert rebuilt.to_json() == merged.to_json()
    assert rebuilt.top(3, 1) == [4]
