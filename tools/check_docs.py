#!/usr/bin/env python3
"""Docs checker: fenced Python blocks in Markdown must compile and run.

Usage::

    PYTHONPATH=src python tools/check_docs.py README.md docs/*.md

Every ```` ```python ```` block is extracted, byte-compiled, and then
executed in a fresh subprocess (blocks must be self-contained — that is
the point: documentation examples that cannot run are documentation
that lies). A block tagged ```` ```python no-run ```` is compiled but
not executed (for illustrative fragments). ```` ```console ```` blocks
are not executed.

Exit code 1 on the first compile error or non-zero block execution.
"""

from __future__ import annotations

import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

__all__ = ["extract_blocks", "check_markdown", "main"]

_FENCE = re.compile(
    r"^```python([^\n]*)\n(.*?)^```\s*$", re.MULTILINE | re.DOTALL
)


def extract_blocks(markdown: str) -> list[tuple[str, bool]]:
    """``(code, runnable)`` for every fenced Python block, in order."""
    blocks: list[tuple[str, bool]] = []
    for match in _FENCE.finditer(markdown):
        info, code = match.group(1).strip(), match.group(2)
        blocks.append((code, info != "no-run"))
    return blocks


def check_markdown(path: Path, run: bool = True) -> list[str]:
    """Compile (and optionally execute) every Python block in a file;
    returns the failure messages."""
    failures: list[str] = []
    blocks = extract_blocks(path.read_text())
    for index, (code, runnable) in enumerate(blocks):
        label = f"{path} block {index + 1}"
        try:
            compile(code, label, "exec")
        except SyntaxError as exc:
            failures.append(f"{label}: does not compile: {exc}")
            continue
        if not (run and runnable):
            continue
        env = os.environ.copy()
        # blocks run from a temp dir; keep a relative PYTHONPATH=src valid
        if "PYTHONPATH" in env:
            env["PYTHONPATH"] = os.pathsep.join(
                str(Path(part).resolve())
                for part in env["PYTHONPATH"].split(os.pathsep)
                if part
            )
        with tempfile.TemporaryDirectory() as tmp:
            script = Path(tmp) / "block.py"
            script.write_text(code)
            proc = subprocess.run(
                [sys.executable, str(script)],
                capture_output=True,
                text=True,
                env=env,
                cwd=tmp,
                timeout=600,
            )
        if proc.returncode != 0:
            failures.append(
                f"{label}: exited {proc.returncode}:\n{proc.stderr.strip()}"
            )
    return failures


def main(argv: list[str]) -> int:
    """Check every given Markdown file; 0 iff all blocks pass."""
    run = True
    if argv and argv[0] == "--compile-only":
        run = False
        argv = argv[1:]
    if not argv:
        print(
            "usage: check_docs.py [--compile-only] FILE.md [FILE.md ...]",
            file=sys.stderr,
        )
        return 2
    failures: list[str] = []
    n_blocks = 0
    for name in argv:
        path = Path(name)
        n_blocks += len(extract_blocks(path.read_text()))
        failures.extend(check_markdown(path, run=run))
    for failure in failures:
        print(failure)
    mode = "ran" if run else "compiled"
    print(
        f"[check_docs: {n_blocks} python blocks {mode}, "
        f"{len(failures)} failures]",
        file=sys.stderr,
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
