#!/usr/bin/env python3
"""Missing-docstring linter for the public API surface (pydocstyle D1xx
equivalent, zero dependencies).

Usage::

    python tools/check_docstrings.py src/repro/service src/repro/storage

Every public module, class, function and method (names not starting
with ``_``) under the given paths must carry a docstring; violations
are listed as ``path:line: message`` and the exit code is 1 if any
exist. Nested (local) functions are skipped — they are implementation
detail, not surface.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

__all__ = ["check_file", "main"]


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def check_file(path: Path) -> list[str]:
    """All missing-docstring violations in one Python file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    problems: list[str] = []
    if ast.get_docstring(tree) is None:
        problems.append(f"{path}:1: missing module docstring")

    def walk(node: ast.AST, *, in_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name) and ast.get_docstring(child) is None:
                    problems.append(
                        f"{path}:{child.lineno}: missing docstring on "
                        f"class {child.name}"
                    )
                walk(child, in_function=in_function)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if (
                    not in_function
                    and _is_public(child.name)
                    and ast.get_docstring(child) is None
                ):
                    problems.append(
                        f"{path}:{child.lineno}: missing docstring on "
                        f"{child.name}()"
                    )
                walk(child, in_function=True)
            else:
                walk(child, in_function=in_function)

    walk(tree, in_function=False)
    return problems


def main(argv: list[str]) -> int:
    """Check every ``.py`` file under the given paths; 0 iff clean."""
    if not argv:
        print("usage: check_docstrings.py PATH [PATH ...]", file=sys.stderr)
        return 2
    problems: list[str] = []
    n_files = 0
    for root in argv:
        root_path = Path(root)
        files = (
            sorted(root_path.rglob("*.py"))
            if root_path.is_dir()
            else [root_path]
        )
        for file in files:
            n_files += 1
            problems.extend(check_file(file))
    for problem in problems:
        print(problem)
    print(
        f"[check_docstrings: {n_files} files, {len(problems)} missing]",
        file=sys.stderr,
    )
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
