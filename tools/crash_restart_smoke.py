#!/usr/bin/env python
"""Crash-restart smoke of the durable online service (ISSUE 8 CI gate).

What CI runs (and anyone can run locally)::

    PYTHONPATH=src python tools/crash_restart_smoke.py

The script:

1. boots ``python -m repro serve --data-dir <tmp>`` with replication on,
2. ingests a synthetic co-access trace over ``POST /ingest``,
3. drains, checkpoints over ``POST /snapshot``, ingests a further tail
   (journaled to the WAL but past the snapshot barrier), drains again,
   and pins a ``/predict`` answer plus the aggregate ``/snapshot``
   list count,
4. SIGKILLs the server — no shutdown handler runs, the queue and the
   in-memory state die instantly,
5. restarts with ``--recover`` against the same data dir and asserts
   the recovery line, the pinned query answer and the aggregate count
   all match the pre-kill service exactly,
6. shuts the recovered server down cleanly and expects exit 0.

Any failed assertion or a hung step exits non-zero, printing both
servers' captured output for diagnosis.
"""

from __future__ import annotations

import json
import shutil
import signal
import subprocess
import sys
import tempfile
import time
import urllib.request
from pathlib import Path

N_RECORDS = 2000
STEP_TIMEOUT_S = 60.0
PINNED_FID = 7


def get(url: str, path: str) -> dict:
    with urllib.request.urlopen(url + path, timeout=10.0) as resp:
        return json.loads(resp.read())


def post(url: str, path: str, body: bytes = b"") -> dict:
    req = urllib.request.Request(url + path, data=body, method="POST")
    with urllib.request.urlopen(req, timeout=30.0) as resp:
        return json.loads(resp.read())


def synthetic_lines(n: int, start: int = 0) -> bytes:
    lines = []
    for i in range(start, start + n):
        fid = (i * 7) % 331
        lines.append(
            json.dumps(
                {
                    "ts": i * 1000,
                    "fid": fid,
                    "uid": i % 13,
                    "pid": 100 + (i % 5),
                    "host": i % 3,
                    "path": f"/data/f{fid}",
                    "op": "open",
                    "size": 0,
                    "dev": 0,
                }
            )
        )
    return ("\n".join(lines) + "\n").encode()


def boot(data_dir: Path, *extra: str) -> tuple[subprocess.Popen, str, list]:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--shards",
            "4",
            "--replicate",
            "--data-dir",
            str(data_dir),
            "--snapshot-interval",
            "0",  # barriers come from POST /snapshot, deterministically
            *extra,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    captured: list[str] = []
    deadline = time.monotonic() + STEP_TIMEOUT_S
    url = None
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        captured.append(line)
        if line.startswith("serving on "):
            url = line.split()[-1]
            break
    assert url, f"no readiness line: {''.join(captured)}"
    return proc, url, captured


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="crash_restart_"))
    data_dir = tmp / "data"
    captured: list[str] = []
    try:
        proc, url, captured = boot(data_dir)

        # ingest, checkpoint mid-stream, then a post-snapshot WAL tail
        post(url, "/ingest", synthetic_lines(N_RECORDS))
        post(url, "/drain")
        checkpoint = post(url, "/snapshot")
        assert checkpoint["seq"] == N_RECORDS, checkpoint
        post(url, "/ingest", synthetic_lines(500, start=N_RECORDS))
        post(url, "/drain")

        pinned = get(url, f"/predict?fid={PINNED_FID}&k=8")["predicted"]
        assert pinned, "pinned query answered nothing pre-kill"
        aggregate = get(url, "/snapshot")
        stats = get(url, "/stats")
        assert stats["durability"]["wal"]["next_seq"] == N_RECORDS + 500

        # SIGKILL: no handler runs; only the data dir survives
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=STEP_TIMEOUT_S)
        assert proc.returncode != 0

        proc, url, lines = boot(data_dir, "--recover")
        captured += lines
        recovery_line = next(
            (line for line in lines if line.startswith("recovered to seq")),
            "",
        )
        assert f"recovered to seq {N_RECORDS + 500}" in recovery_line, lines

        recovered = get(url, f"/predict?fid={PINNED_FID}&k=8")["predicted"]
        assert recovered == pinned, (
            f"pinned answer diverged: pre-kill {pinned} vs "
            f"recovered {recovered}"
        )
        assert get(url, "/snapshot") == aggregate, "aggregate diverged"
        stats = get(url, "/stats")
        recovery = stats["durability"]["recovery"]
        assert recovery["wal_replayed"] == 500, recovery
        assert recovery["durable_seq"] == N_RECORDS + 500, recovery

        post(url, "/shutdown")
        out, _ = proc.communicate(timeout=STEP_TIMEOUT_S)
        captured.append(out)
        assert proc.returncode == 0, f"exit {proc.returncode}"
        assert "final snapshot at seq" in out, out
        print("crash-restart smoke OK:")
        print("  " + recovery_line.strip())
        print("  pinned /predict answer identical after SIGKILL + --recover")
        return 0
    except BaseException:
        print("".join(captured), file=sys.stderr)
        raise
    finally:
        try:
            proc.kill()
        except Exception:
            pass
        shutil.rmtree(tmp, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
