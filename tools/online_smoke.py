#!/usr/bin/env python
"""End-to-end smoke of the online ingestion service (`repro serve`).

What CI runs (and anyone can run locally)::

    PYTHONPATH=src python tools/online_smoke.py

The script:

1. writes a synthetic JSONL trace file head (nothing in it yet),
2. starts ``python -m repro serve --tail <file>`` as a subprocess with
   replication on, reading the readiness line for the bound URL,
3. appends 2000 records to the tailed file (the agent picks them up
   live) and waits until ``/stats`` reports them all mined,
4. exercises ``/predict``, ``/stats``, ``/snapshot``, ``/telemetry``,
5. triggers ``fail_shard`` + ``promote_standby`` over the API and
   checks the service still answers queries,
6. posts ``/drain`` then ``/shutdown`` and asserts the process exits 0
   with the final accounting on stdout.

Any failed assertion or a hung step exits non-zero, printing the
server's captured output for diagnosis.
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

N_RECORDS = 2000
STEP_TIMEOUT_S = 60.0


def get(url: str, path: str) -> dict:
    with urllib.request.urlopen(url + path, timeout=10.0) as resp:
        return json.loads(resp.read())


def post(url: str, path: str, payload: dict | None = None) -> dict:
    data = json.dumps(payload).encode() if payload is not None else b""
    req = urllib.request.Request(url + path, data=data, method="POST")
    with urllib.request.urlopen(req, timeout=30.0) as resp:
        return json.loads(resp.read())


def wait_until(check, what: str, timeout_s: float = STEP_TIMEOUT_S):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        result = check()
        if result:
            return result
        time.sleep(0.1)
    raise TimeoutError(f"timed out waiting for {what}")


def synthetic_lines(n: int) -> list[str]:
    # a looped file population with co-access structure: enough for the
    # miner to produce non-trivial correlations across every shard
    lines = []
    for i in range(n):
        fid = (i * 7) % 331
        lines.append(
            json.dumps(
                {
                    "ts": i * 1000,
                    "fid": fid,
                    "uid": i % 13,
                    "pid": 100 + (i % 5),
                    "host": i % 3,
                    "path": f"/data/f{fid}",
                    "op": "open",
                    "size": 0,
                    "dev": 0,
                }
            )
        )
    return lines


def main() -> int:
    tmp = Path(tempfile.mkdtemp(prefix="online_smoke_"))
    trace_path = tmp / "trace.jsonl"
    trace_path.write_text("")  # the agent tails from byte 0

    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--shards",
            "4",
            "--replicate",
            "--sync-interval",
            "256",
            "--queue-capacity",
            "4096",
            "--batch-size",
            "128",
            "--tail",
            str(trace_path),
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    captured: list[str] = []
    try:
        # readiness: the first stdout line names the bound URL
        line = proc.stdout.readline()
        captured.append(line)
        assert line.startswith("serving on "), f"no readiness line: {line!r}"
        url = line.split()[-1]
        assert get(url, "/health")["status"] == "ok"

        # feed the trace through the tailed file, a chunk at a time plus
        # one deliberately split line (the agent must wait for the "\n")
        lines = synthetic_lines(N_RECORDS)
        with open(trace_path, "a", encoding="utf-8") as fh:
            for start in range(0, N_RECORDS, 500):
                chunk = lines[start : start + 500]
                fh.write("\n".join(chunk) + "\n")
                fh.flush()
        half = json.dumps({"ts": 0, "fid": 1, "uid": 1, "pid": 1, "host": 1})
        with open(trace_path, "a", encoding="utf-8") as fh:
            fh.write(half[: len(half) // 2])
            fh.flush()
        time.sleep(0.2)  # the partial line must NOT be parsed yet
        with open(trace_path, "a", encoding="utf-8") as fh:
            fh.write(half[len(half) // 2 :] + "\n")

        total = N_RECORDS + 1  # the split record counts too
        stats = wait_until(
            lambda: (
                lambda s: s
                if s["service"]["n_observed"] >= total
                else None
            )(get(url, "/stats")),
            f"{total} records mined",
        )
        assert stats["pipeline"]["n_shed"] == 0, "records shed at low load"
        assert stats["service"]["n_shards"] == 4

        # queries answer while the service keeps running
        predicted = get(url, "/predict?fid=7&k=5")["predicted"]
        assert isinstance(predicted, list) and predicted, predicted
        snapshot = get(url, "/snapshot")
        assert snapshot["n_lists"] > 0, snapshot
        telemetry = get(url, "/telemetry")
        assert telemetry["counters"].get("admission.accepted", 0) > 0
        assert "queue_depth" in telemetry["series"]

        # failover over the API: kill a shard, promote its standby, and
        # the service must answer for that partition again
        post(url, "/fail_shard", {"shard": 1})
        promote = post(url, "/promote_standby", {"shard": 1})
        assert promote["shard"] == 1 and promote["n_nodes_restored"] >= 0
        stats = get(url, "/stats")
        assert stats["service"]["n_failovers"] == 1, stats["service"]

        # a full drain barrier, then clean remote shutdown
        post(url, "/drain")
        post(url, "/shutdown")
        out, _ = proc.communicate(timeout=STEP_TIMEOUT_S)
        captured.append(out)
        assert proc.returncode == 0, f"exit {proc.returncode}"
        assert "drained" in out and "mined" in out, out
        print("online smoke OK:")
        print("  " + out.strip().splitlines()[-1])
        return 0
    except BaseException:
        proc.kill()
        rest = proc.stdout.read() if proc.stdout else ""
        print("---- server output ----")
        print("".join(captured) + (rest or ""), file=sys.stderr)
        raise


if __name__ == "__main__":
    sys.exit(main())
